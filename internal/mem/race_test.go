package mem

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRaceLockFreeReadOnlyValidation hammers lock-free read-only commits
// against every kind of concurrent mutation the memory supports — plain
// stores, CASes, fetch-and-adds, and multi-word commit write-backs — and
// asserts that no torn validation is ever observed: whenever a read-only
// commit validates a logged (x, y) snapshot successfully, that snapshot
// satisfied the writers' invariant x + y == total. Run under -race this also
// proves the lock-free path is free of data races with the seqlock writers.
func TestRaceLockFreeReadOnlyValidation(t *testing.T) {
	const total = 1 << 20
	m := New(1 << 12)
	c := m.NewThreadCache()
	x := c.Alloc(LineWords)
	y := c.Alloc(LineWords)
	noise := c.Alloc(LineWords)
	m.StorePlain(x, total)

	writerOps := 2000
	if testing.Short() {
		writerOps = 300
	}
	var wg sync.WaitGroup
	var writersDone atomic.Int32

	// Pair writer: keeps x + y == total with atomic two-word write-backs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writersDone.Add(1)
		for i := uint64(1); i <= uint64(writerOps); i++ {
			v := i % total
			m.CommitWrites([]WriteEntry{{Addr: x, Value: v}, {Addr: y, Value: total - v}}, nil)
			if i%8 == 0 {
				runtime.Gosched()
			}
		}
	}()
	// Noise writer: moves the clock via stores, CASes and adds on an
	// unrelated word, forcing validators to retry and revalidate.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writersDone.Add(1)
		for i := uint64(0); i < uint64(writerOps); i++ {
			switch i % 3 {
			case 0:
				m.StorePlain(noise, i)
			case 1:
				m.CASPlain(noise, m.LoadPlain(noise), i)
			case 2:
				m.AddPlain(noise, 1)
			}
			if i%8 == 0 {
				runtime.Gosched()
			}
		}
	}()

	var torn atomic.Uint64
	var commits atomic.Uint64
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Run while any writer is still live, then make a few quiet
			// attempts so at least some commits deterministically succeed
			// even if every in-storm validation failed.
			quiet := 0
			for quiet < 10 {
				if writersDone.Load() == 2 {
					quiet++
				}
				// Log a seqlock-consistent snapshot of (x, y)...
				var vx, vy uint64
				for {
					c0 := m.Clock()
					if c0&1 != 0 {
						runtime.Gosched()
						continue
					}
					vx, vy = m.LoadPlain(x), m.LoadPlain(y)
					if m.Clock() == c0 {
						break
					}
				}
				// ...then commit read-only, revalidating the log by value
				// exactly the way htm.Txn.Commit does.
				ok := m.CommitWrites(nil, func() bool {
					return m.LoadPlain(x) == vx && m.LoadPlain(y) == vy
				})
				if ok {
					commits.Add(1)
					if vx+vy != total {
						torn.Add(1)
					}
				}
				runtime.Gosched() // don't starve the writers on few OS threads
			}
		}()
	}
	wg.Wait()
	if torn.Load() != 0 {
		t.Errorf("torn validation observed %d times: read-only commits validated inconsistent snapshots", torn.Load())
	}
	if commits.Load() == 0 {
		t.Error("no read-only commit ever succeeded; the stress proved nothing")
	}
}
