package mem

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// readPairConsistent reads (x, y) under the per-stripe seqlock read
// protocol: record a stable (even) clock for each word's stripe, read both
// words, and accept only if neither stripe clock moved — exactly the
// discipline htm transactions use per footprint stripe.
func readPairConsistent(m *Memory, x, y Addr) (uint64, uint64) {
	sx, sy := m.StripeOf(x), m.StripeOf(y)
	for {
		cx, cy := m.StripeClock(sx), m.StripeClock(sy)
		if cx&1 != 0 || cy&1 != 0 {
			runtime.Gosched()
			continue
		}
		vx, vy := m.LoadPlain(x), m.LoadPlain(y)
		if m.StripeClock(sx) == cx && m.StripeClock(sy) == cy {
			return vx, vy
		}
	}
}

// TestRaceLockFreeReadOnlyValidation hammers lock-free read-only commits
// against every kind of concurrent mutation the memory supports — plain
// stores, CASes, fetch-and-adds, and multi-word commit write-backs — and
// asserts that no torn validation is ever observed: whenever a read-only
// commit validates a logged (x, y) snapshot successfully, that snapshot
// satisfied the writers' invariant x + y == total. The pair writer's write
// set spans two stripes, so this also exercises cross-stripe commit
// atomicity against per-stripe readers. Run under -race this proves the
// lock-free path is free of data races with the seqlock writers.
func TestRaceLockFreeReadOnlyValidation(t *testing.T) {
	const total = 1 << 20
	m := New(1 << 12)
	c := m.NewThreadCache()
	x := c.Alloc(LineWords)
	y := c.Alloc(LineWords)
	noise := c.Alloc(LineWords)
	m.StorePlain(x, total)
	if m.StripeOf(x) == m.StripeOf(y) {
		t.Fatalf("x and y landed on the same stripe %d; the test needs a cross-stripe pair", m.StripeOf(x))
	}

	writerOps := 2000
	if testing.Short() {
		writerOps = 300
	}
	var wg sync.WaitGroup
	var writersDone atomic.Int32

	// Pair writer: keeps x + y == total with atomic two-stripe write-backs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writersDone.Add(1)
		for i := uint64(1); i <= uint64(writerOps); i++ {
			v := i % total
			m.CommitWrites([]WriteEntry{{Addr: x, Value: v}, {Addr: y, Value: total - v}}, nil)
			if i%8 == 0 {
				runtime.Gosched()
			}
		}
	}()
	// Noise writer: moves a third stripe's clock via stores, CASes and adds
	// on an unrelated word; under striping this must NOT force the pair
	// validators to retry (their footprint excludes the noise stripe).
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writersDone.Add(1)
		for i := uint64(0); i < uint64(writerOps); i++ {
			switch i % 3 {
			case 0:
				m.StorePlain(noise, i)
			case 1:
				m.CASPlain(noise, m.LoadPlain(noise), i)
			case 2:
				m.AddPlain(noise, 1)
			}
			if i%8 == 0 {
				runtime.Gosched()
			}
		}
	}()

	var torn atomic.Uint64
	var commits atomic.Uint64
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Run while any writer is still live, then make a few quiet
			// attempts so at least some commits deterministically succeed
			// even if every in-storm validation failed.
			quiet := 0
			for quiet < 10 {
				if writersDone.Load() == 2 {
					quiet++
				}
				// Log a stripe-consistent snapshot of (x, y)...
				vx, vy := readPairConsistent(m, x, y)
				// ...then commit read-only, revalidating the log by value
				// exactly the way htm.Txn.Commit does.
				ok := m.CommitWrites(nil, func() bool {
					return m.LoadPlain(x) == vx && m.LoadPlain(y) == vy
				})
				if ok {
					commits.Add(1)
					if vx+vy != total {
						torn.Add(1)
					}
				}
				runtime.Gosched() // don't starve the writers on few OS threads
			}
		}()
	}
	wg.Wait()
	if torn.Load() != 0 {
		t.Errorf("torn validation observed %d times: read-only commits validated inconsistent snapshots", torn.Load())
	}
	if commits.Load() == 0 {
		t.Error("no read-only commit ever succeeded; the stress proved nothing")
	}
}

// TestRaceMultiStripeCommitOrdering is the striping lock-order stress:
// concurrent commits whose write sets span overlapping multi-stripe
// subsets, interleaved with plain mutators on the same stripes. Every
// commit writes one common tuple of words — one word per stripe — with a
// single writer-unique value, so any consistent snapshot must observe all
// tuple words equal; a torn write set or a misordered lock acquisition
// would surface as a mixed tuple (or as a deadlock, which the test timeout
// catches). Snapshot supplies the consistent read side.
func TestRaceMultiStripeCommitOrdering(t *testing.T) {
	const tupleLines = 6 // tuple spans 6 distinct stripes
	m := New(1 << 14)
	c := m.NewThreadCache()
	base := c.Alloc(tupleLines * LineWords)
	tuple := make([]Addr, tupleLines)
	for i := range tuple {
		tuple[i] = base + Addr(i*LineWords)
	}
	for i := 1; i < tupleLines; i++ {
		if m.StripeOf(tuple[i]) == m.StripeOf(tuple[0]) {
			t.Fatalf("tuple words 0 and %d share stripe %d; the test needs distinct stripes", i, m.StripeOf(tuple[0]))
		}
	}
	// Seed the tuple so early snapshots see a legal state.
	m.CommitWrites([]WriteEntry{{tuple[0], 0}, {tuple[1], 0}, {tuple[2], 0}, {tuple[3], 0}, {tuple[4], 0}, {tuple[5], 0}}, nil)

	writerOps := 1500
	if testing.Short() {
		writerOps = 250
	}
	const writers = 4
	var wg sync.WaitGroup
	var done atomic.Int32
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer done.Add(1)
			writes := make([]WriteEntry, tupleLines)
			for i := uint64(1); i <= uint64(writerOps); i++ {
				v := uint64(id)<<32 | i
				// Vary the entry order so lock acquisition order cannot
				// accidentally match write-set order: correctness must come
				// from the canonical stripe ordering inside CommitWrites.
				for j := range writes {
					writes[j] = WriteEntry{tuple[(j+id)%tupleLines], v}
				}
				m.CommitWrites(writes, nil)
				if i%16 == 0 {
					runtime.Gosched()
				}
			}
		}(w)
	}
	// Plain mutators keep single-stripe traffic (stores, CASes, adds)
	// colliding with the multi-stripe commits on the same stripes, via the
	// second word of each tuple line (never read by the checkers).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := uint64(0); i < uint64(writerOps); i++ {
				a := tuple[i%tupleLines] + 1
				switch i % 3 {
				case 0:
					m.StorePlain(a, i)
				case 1:
					m.CASPlain(a, m.LoadPlain(a), i)
				case 2:
					m.AddPlain(a, 1)
				}
				if i%16 == 0 {
					runtime.Gosched()
				}
			}
		}(w)
	}

	var mixed atomic.Uint64
	var reads atomic.Uint64
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]uint64, tupleLines*LineWords)
			quiet := 0
			for quiet < 10 {
				if done.Load() == writers {
					quiet++
				}
				m.Snapshot(base, dst)
				reads.Add(1)
				v0 := dst[0]
				for i := 1; i < tupleLines; i++ {
					if dst[i*LineWords] != v0 {
						mixed.Add(1)
						break
					}
				}
				runtime.Gosched()
			}
		}()
	}
	wg.Wait()
	if mixed.Load() != 0 {
		t.Errorf("torn write-set visibility: %d of %d snapshots saw a mixed tuple", mixed.Load(), reads.Load())
	}
}
