package mem

import "sync/atomic"

// This file provides the flat-combining ring behind slow-path group commit:
// a software committer that finds the global sequence lock held at its own
// snapshot base enqueues its pre-validated write set here instead of
// spinning; the lock holder, before releasing, drains every queued commit
// whose base matches and whose read signature is disjoint from everything
// the group has written so far, and publishes the whole group under its one
// ticket window. The enqueuer then observes the outcome and either counts a
// commit or restarts — it never publishes anything itself.
//
// The ring is a fixed array of slots driven by a small state machine:
//
//	free --CAS--> setup --> pending --CAS--> claimed --> done | rejected
//	                 \--> (cancel: back to free)
//
// The enqueuer owns free->setup->pending and the terminal release;
// a holder owns pending->claimed->done/rejected. All cross-thread payload
// accesses are ordered by the state word: the enqueuer's Store(pending)
// releases the payload to the holder's claim CAS, and the holder's
// Store(done/rejected) releases the outcome back. A pending entry whose
// window has passed (the clock moved off its base) is retracted by its
// enqueuer via TryCancel; if a holder claimed it first, the enqueuer waits
// for the holder's verdict — claims are always resolved, on the holder's
// commit and abort paths both.
type CombineRing struct {
	slots [CombineSlots]combineEntry
}

// CombineSlots is the ring capacity: the most commits one group can batch,
// above the holder's own.
const CombineSlots = 8

const (
	combineFree uint32 = iota
	combineSetup
	combinePending
	combineClaimed
	combineDone
	combineRejected
)

type combineEntry struct {
	state atomic.Uint32
	// base is the even clock value the enqueuer's reads are valid at; only
	// a holder that locked the clock at exactly this base may claim.
	base uint64
	// writes aliases the enqueuer's buffer. The enqueuer must not touch it
	// between Enqueue and the slot's release — the protocol guarantees it
	// observes a terminal state (or cancels) before reusing the buffer.
	writes   []WriteEntry
	readSig  Signature
	writeSig Signature
}

// NewCombineRing returns an empty ring.
func NewCombineRing() *CombineRing { return new(CombineRing) }

// CombineOutcome is the enqueuer-visible state of a slot.
type CombineOutcome uint8

const (
	// CombinePending: no verdict yet — the entry is waiting for a holder or
	// claimed by one.
	CombinePending CombineOutcome = iota
	// CombineDone: a holder published the entry's writes; the transaction
	// has committed. Release the slot.
	CombineDone
	// CombineRejected: a holder claimed the entry but could not publish it
	// (its group aborted). Release the slot and restart the transaction.
	CombineRejected
)

// Enqueue publishes a pre-validated write set for group commit at the given
// snapshot base. It returns the slot index, or -1 when the ring is full.
// The caller must poll the slot to a terminal outcome (or TryCancel it)
// before reusing writes or enqueueing again.
func (r *CombineRing) Enqueue(base uint64, writes []WriteEntry, readSig, writeSig *Signature) int {
	for i := range r.slots {
		e := &r.slots[i]
		if e.state.Load() == combineFree && e.state.CompareAndSwap(combineFree, combineSetup) {
			e.base = base
			e.writes = writes
			e.readSig = *readSig
			e.writeSig = *writeSig
			e.state.Store(combinePending)
			return i
		}
	}
	return -1
}

// Poll reports slot's outcome.
func (r *CombineRing) Poll(slot int) CombineOutcome {
	switch r.slots[slot].state.Load() {
	case combineDone:
		return CombineDone
	case combineRejected:
		return CombineRejected
	default:
		return CombinePending
	}
}

// TryCancel retracts a still-pending entry, freeing its slot; it reports
// false when a holder has already claimed the entry, in which case the
// enqueuer must keep polling — the claim will be resolved.
func (r *CombineRing) TryCancel(slot int) bool {
	e := &r.slots[slot]
	if !e.state.CompareAndSwap(combinePending, combineSetup) {
		return false
	}
	e.writes = nil
	e.state.Store(combineFree)
	return true
}

// Release frees a slot after the enqueuer has observed a terminal outcome.
func (r *CombineRing) Release(slot int) {
	e := &r.slots[slot]
	e.writes = nil
	e.state.Store(combineFree)
}

// Drain claims every pending entry compatible with the holder's group and
// applies its writes. An entry is compatible when its base matches the
// holder's locked base and its read signature is disjoint from group — the
// accumulated write signature of the holder and every entry drained so far
// — which proves, with no false negatives by the bloom construction, that
// nothing already in the group wrote a line the entry read, so its
// enqueue-time validation still stands. Each claimed entry's write
// signature is folded into group before the next slot is examined, so
// entries admitted later are also checked against it (serial order: holder
// first, then claimed entries in ascending slot order).
//
// Claimed slots are recorded in *mask (bit i = slot i) as they are claimed,
// before apply runs, so a panic unwinding out of apply leaves *mask exactly
// describing the claims the caller must still Resolve. budget bounds the
// total write entries applied (a postfix holder has hardware capacity to
// respect); entries that would overflow it stay pending.
//
// Base-mismatched entries stay pending untouched. Signature-intersecting
// entries at the right base are rejected immediately: after this group
// publishes, their base is stale, so they could never commit later anyway —
// rejecting now spares their enqueuers a futile wait.
func (r *CombineRing) Drain(base uint64, group *Signature, budget int, mask *uint32, apply func(writes []WriteEntry)) int {
	claimed := 0
	for i := range r.slots {
		e := &r.slots[i]
		if e.state.Load() != combinePending || !e.state.CompareAndSwap(combinePending, combineClaimed) {
			continue
		}
		if e.base != base {
			e.state.Store(combinePending)
			continue
		}
		if e.readSig.Intersects(group) {
			e.state.Store(combineRejected)
			continue
		}
		if len(e.writes) > budget {
			e.state.Store(combinePending)
			continue
		}
		budget -= len(e.writes)
		*mask |= 1 << uint(i)
		claimed++
		group.Union(&e.writeSig)
		apply(e.writes)
	}
	return claimed
}

// PendingCount reports how many slots currently hold a pending entry — a
// diagnostic snapshot (immediately stale under concurrency) for tests and
// benchmark instrumentation, not a synchronization primitive.
func (r *CombineRing) PendingCount() int {
	n := 0
	for i := range r.slots {
		if r.slots[i].state.Load() == combinePending {
			n++
		}
	}
	return n
}

// PendingAt reports how many pending entries carry exactly the given base —
// the holder's "is a batch forming for my window" signal. Like PendingCount
// it is a heuristic snapshot: a pending state load (acquire) makes the
// enqueuer's base store visible, and a concurrent transition merely skews
// the count, which only paces the holder's linger.
func (r *CombineRing) PendingAt(base uint64) int {
	n := 0
	for i := range r.slots {
		e := &r.slots[i]
		if e.state.Load() == combinePending && e.base == base {
			n++
		}
	}
	return n
}

// Resolve moves every claimed slot in mask to done (ok) or rejected (the
// group aborted). Holders call it with ok=true after their publish is
// visible, and with ok=false on every abort path that may hold claims.
func (r *CombineRing) Resolve(mask uint32, ok bool) {
	st := combineRejected
	if ok {
		st = combineDone
	}
	for i := range r.slots {
		if mask&(1<<uint(i)) != 0 {
			r.slots[i].state.Store(st)
		}
	}
}
