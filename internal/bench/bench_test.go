package bench_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rhnorec/internal/bench"
)

func TestRunSinglePoint(t *testing.T) {
	algo, ok := bench.AlgoByName("rh-norec")
	if !ok {
		t.Fatal("rh-norec not registered")
	}
	res, err := bench.Run(bench.RunConfig{
		Workload: bench.RBTree(bench.RBTreeConfig{Size: 256, MutationRatio: 0.1})(),
		Algo:     algo,
		Threads:  2,
		Duration: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Error("no operations completed")
	}
	if res.Throughput <= 0 {
		t.Error("throughput not positive")
	}
	if res.Stats.Commits == 0 {
		t.Error("no commits recorded")
	}
	if res.Workload != "rbtree-10" || res.Algo != "rh-norec" || res.Threads != 2 {
		t.Errorf("result metadata wrong: %+v", res)
	}
}

func TestStandardAlgosComplete(t *testing.T) {
	names := map[string]bool{}
	for _, a := range bench.StandardAlgos() {
		names[a.Name] = true
	}
	for _, want := range []string{"lock-elision", "norec", "tl2", "hy-norec", "rh-norec"} {
		if !names[want] {
			t.Errorf("missing standard algorithm %q", want)
		}
	}
	if _, ok := bench.AlgoByName("nope"); ok {
		t.Error("AlgoByName matched a bogus name")
	}
}

func TestAllWorkloadsRunOnAllAlgos(t *testing.T) {
	factories := map[string]bench.WorkloadFactory{
		"rbtree":        bench.RBTree(bench.RBTreeConfig{Size: 128, MutationRatio: 0.2}),
		"vacation-low":  bench.VacationLow(),
		"vacation-high": bench.VacationHigh(),
		"intruder":      bench.Intruder(),
		"genome":        bench.Genome(),
		"ssca2":         bench.SSCA2(),
		"kmeans":        bench.Kmeans(),
		"labyrinth":     bench.Labyrinth(),
		"yada":          bench.Yada(),
		"bayes":         bench.Bayes(),
		"skiplist":      bench.SkipListWorkload(bench.RBTreeConfig{Size: 128, MutationRatio: 0.2}),
		"sortedlist":    bench.SortedListWorkload(bench.RBTreeConfig{Size: 64, MutationRatio: 0.2}),
	}
	for wname, f := range factories {
		for _, algo := range bench.StandardAlgos() {
			t.Run(wname+"/"+algo.Name, func(t *testing.T) {
				res, err := bench.Run(bench.RunConfig{
					Workload: f(),
					Algo:     algo,
					Threads:  2,
					Duration: 15 * time.Millisecond,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Ops == 0 {
					t.Error("no operations completed")
				}
			})
		}
	}
}

func TestSweepPrintFormat(t *testing.T) {
	s, err := bench.RunSweep(bench.SweepConfig{
		Factory:  bench.RBTree(bench.RBTreeConfig{Size: 64, MutationRatio: 0.4}),
		Threads:  []int{1, 2},
		Duration: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	s.Print(&buf)
	out := buf.String()
	for _, want := range []string{
		"workload: rbtree-40",
		"throughput (ops/sec):",
		"lock-elision",
		"rh-norec",
		"analysis: hy-norec",
		"analysis: rh-norec",
		"prefix-succ",
		"postfix-succ",
		"conflicts/op",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q:\n%s", want, out)
		}
	}
}

func TestDefaultThreadsMatchPaperRange(t *testing.T) {
	ths := bench.DefaultThreads()
	if ths[0] != 1 || ths[len(ths)-1] != 16 {
		t.Errorf("DefaultThreads = %v, want 1..16", ths)
	}
}

func TestProgressCallback(t *testing.T) {
	count := 0
	_, err := bench.RunSweep(bench.SweepConfig{
		Factory:  bench.SSCA2(),
		Algos:    bench.StandardAlgos()[:2],
		Threads:  []int{1},
		Duration: 10 * time.Millisecond,
		Progress: func(bench.Result) { count++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("progress fired %d times, want 2", count)
	}
}
