package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestValidateDumpFile validates an rhbench -json dump against the schema.
// With RHBENCH_DUMP set it validates that file (this is the CI obs-smoke
// job's check); otherwise it generates a tiny dump in-process so the test
// is self-contained.
func TestValidateDumpFile(t *testing.T) {
	if path := os.Getenv("RHBENCH_DUMP"); path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateDump(data); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return
	}
	var rec JSONRecorder
	_, err := RunSweep(SweepConfig{
		Factory:  RBTree(RBTreeConfig{Size: 128, MutationRatio: 0.5}),
		Algos:    StandardAlgos(),
		Threads:  []int{2},
		Duration: 10 * time.Millisecond,
		MemWords: 1 << 16,
		Obs:      true,
		ObsRing:  64,
		Progress: rec.Record,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateDump(buf.Bytes()); err != nil {
		t.Fatalf("generated dump fails its own schema: %v\n%s", err, buf.String())
	}
	// The obs run must actually have produced observability data.
	if !strings.Contains(buf.String(), `"obs"`) {
		t.Fatal("obs-enabled dump carries no obs snapshots")
	}
}

// TestCheckedInBaselines validates every checked-in BENCH_*.json baseline
// against its schema, so a stale or hand-edited baseline cannot drift from
// the format the perf gates (rhbench -compare, cmd/rhgate) parse.
func TestCheckedInBaselines(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no checked-in BENCH_*.json baselines found")
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// BENCH_1.json predates the versioned envelope (a bare point
			// array); it is kept as a historical record and gates nothing.
			if trimmed := bytes.TrimSpace(data); len(trimmed) > 0 && trimmed[0] == '[' {
				t.Skip("legacy pre-versioned dump")
			}
			if err := ValidateDump(data); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestValidateDumpRejections(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{"not-json", `{`, "does not parse"},
		{"v1-array", `[]`, "does not parse"},
		{"wrong-version", `{"schema_version":"rhbench.v1","points":[]}`, "schema_version"},
		{"null-points", `{"schema_version":"rhbench.v2","points":null}`, "null"},
		{"unknown-field", `{"schema_version":"rhbench.v2","points":[],"extra":1}`, "does not parse"},
		{"empty-workload", `{"schema_version":"rhbench.v2","points":[{"workload":"","algo":"a","threads":1,"ops":0,"elapsed_sec":1,"ops_per_sec":0}]}`, "workload"},
		{"zero-threads", `{"schema_version":"rhbench.v2","points":[{"workload":"w","algo":"a","threads":0,"ops":0,"elapsed_sec":1,"ops_per_sec":0}]}`, "threads"},
		{"bad-phase", `{"schema_version":"rhbench.v2","points":[{"workload":"w","algo":"a","threads":1,"ops":0,"elapsed_sec":1,"ops_per_sec":0,
			"obs":{"phases":[{"phase":"warp","count":1,"sum_ns":1,"max_ns":1,"p50_ns":1,"p90_ns":1,"p99_ns":1,"buckets":[{"lo_ns":1,"count":1}]}],"aborts":[]}}]}`, "unknown phase"},
		{"bad-cause", `{"schema_version":"rhbench.v2","points":[{"workload":"w","algo":"a","threads":1,"ops":0,"elapsed_sec":1,"ops_per_sec":0,
			"obs":{"phases":[],"aborts":[{"cause":"gremlins","count":1,"retry_mean":1,"retry_max":1}]}}]}`, "unknown abort cause"},
		{"bucket-mismatch", `{"schema_version":"rhbench.v2","points":[{"workload":"w","algo":"a","threads":1,"ops":0,"elapsed_sec":1,"ops_per_sec":0,
			"obs":{"phases":[{"phase":"fast","count":3,"sum_ns":3,"max_ns":1,"p50_ns":1,"p90_ns":1,"p99_ns":1,"buckets":[{"lo_ns":1,"count":1}]}],"aborts":[]}}]}`, "bucket counts"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateDump([]byte(tc.data))
			if err == nil {
				t.Fatal("validated, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
