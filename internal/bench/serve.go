package bench

import (
	"bytes"
	"encoding/json"
	"fmt"

	"rhnorec/internal/obs"
)

// The rhserve.v1 dump schema: the machine-readable form of the KV service's
// /metrics surface (internal/serve, cmd/rhserve), consumed by cmd/rhload to
// build the BENCH_5 service-level perf trajectory. It lives in this package
// — next to the rhbench.v2 schema — so ValidateDump can check both formats
// and the Go structs stay the single source of truth for docs/METRICS.md.
// The versioning contract is the same as rhbench.v2's: additive optional
// fields do not bump the version; renames and meaning changes do.

// ServeSchemaVersion identifies the rhserve JSON dump format.
const ServeSchemaVersion = "rhserve.v1"

// ServeEndpointNames is the fixed endpoint vocabulary of the service: the
// only labels a ServeEndpoint row may carry, in dump order.
var ServeEndpointNames = []string{"get", "put", "cas", "scan", "txn"}

// ServeDump is the versioned envelope of one rhserve metrics snapshot.
type ServeDump struct {
	// SchemaVersion is always ServeSchemaVersion ("rhserve.v1").
	SchemaVersion string `json:"schema_version"`
	// Algo is the TM algorithm backing the store (tm.System.Name).
	Algo string `json:"algo"`
	// Workers is the size of the sticky worker pool.
	Workers int `json:"workers"`
	// Keys is the number of KV slots mapped onto the word arena.
	Keys int `json:"keys"`
	// UptimeSec is the seconds since the server started.
	UptimeSec float64 `json:"uptime_sec"`
	// Endpoints holds one row per endpoint that served at least one
	// request, in ServeEndpointNames order.
	Endpoints []ServeEndpoint `json:"endpoints"`
	// Admission is the admission controller's shed ledger.
	Admission ServeAdmission `json:"admission"`
	// TM summarizes the merged per-worker transaction counters.
	TM ServeTM `json:"tm"`
	// Pipeline holds one row per non-empty binary-session drain-depth
	// bucket (power-of-two depths, ascending). Optional and additive: dumps
	// from servers that saw no binary traffic omit it.
	Pipeline []ServePipelineBucket `json:"pipeline,omitempty"`
	// SnapScan is the snapshot-scan fast-path ledger. Optional and
	// additive: omitted when no scan was eligible.
	SnapScan *ServeSnapScan `json:"snapscan,omitempty"`
	// Persist is the durable persistence plane's ledger (redo log + boot
	// recovery). Optional and additive: omitted when the server runs without
	// a data directory.
	Persist *ServePersist `json:"persist,omitempty"`
	// Obs is the merged engine-level observability snapshot (phase latency
	// histograms, abort taxonomy, policy and filter ledgers) of the worker
	// threads — the same block an rhbench.v2 point embeds.
	Obs *obs.Snapshot `json:"obs,omitempty"`
}

// ServePipelineBucket counts binary-protocol drains whose frame count
// rounded up to Depth (1, 2, 4, ..., 64; the last bucket absorbs deeper
// drains). One drain = one blocking read plus every complete frame already
// buffered, answered through a single flush.
type ServePipelineBucket struct {
	Depth  int    `json:"depth"`
	Drains uint64 `json:"drains"`
}

// ServeSnapScan ledgers the snapshot-scan fast path: single-scan read-only
// requests answered from a seqlock-validated memory snapshot instead of an
// instrumented transaction. Hits + Fallbacks == Attempts.
type ServeSnapScan struct {
	// Attempts counts eligible requests (read-only, exactly one scan op).
	Attempts uint64 `json:"attempts"`
	// Hits counts attempts answered by a clean snapshot pass.
	Hits uint64 `json:"hits"`
	// Fallbacks counts attempts whose passes were all dirtied by concurrent
	// writers and re-ran on the transactional path.
	Fallbacks uint64 `json:"fallbacks"`
}

// ServePersist ledgers the durable persistence plane: the redo log's append
// and group-fsync counters plus what boot-time crash recovery replayed. The
// counter names mirror obs.PersistKind's schema strings (docs/METRICS.md).
type ServePersist struct {
	// LogAppends counts logged commits ("log-append").
	LogAppends uint64 `json:"log_appends"`
	// LogRecords counts per-segment redo records ("log-record");
	// >= LogAppends, since one commit may span several segments.
	LogRecords uint64 `json:"log_records"`
	// FsyncGroups counts group-fsync passes ("fsync-group"); every durable
	// ack waiting at a pass rode it, so FsyncGroups <= LogAppends under load
	// is the batching win.
	FsyncGroups uint64 `json:"fsync_groups"`
	// Fsyncs counts per-segment-file fsyncs ("fsync").
	Fsyncs uint64 `json:"fsyncs"`
	// Appended and Durable are the log's sequence frontiers: the last
	// sequence buffered and the last sequence known on stable storage.
	Appended uint64 `json:"appended"`
	Durable  uint64 `json:"durable"`
	// RecoveryReplayed counts commits boot recovery replayed
	// ("recovery-replayed").
	RecoveryReplayed uint64 `json:"recovery_replayed"`
	// RecoveryDropped counts parsed records discarded beyond the consistent
	// cut ("recovery-dropped").
	RecoveryDropped uint64 `json:"recovery_dropped"`
	// TornTails counts segments whose tail bytes were torn or corrupt
	// ("torn-tail").
	TornTails uint64 `json:"torn_tails"`
}

// ServeEndpoint is one endpoint's request ledger and latency distribution.
type ServeEndpoint struct {
	// Endpoint is the endpoint name (one of ServeEndpointNames).
	Endpoint string `json:"endpoint"`
	// Requests counts requests dequeued by a worker for this endpoint
	// (admission sheds never reach a worker and are ledgered separately).
	Requests uint64 `json:"requests"`
	// Errors counts requests answered with an application error.
	Errors uint64 `json:"errors"`
	// Shed counts requests shed at dequeue time (deadline expired while
	// queued) — the Retry-After path, not a failure.
	Shed uint64 `json:"shed"`
	// Fused counts requests executed inside a fused batch of two or more.
	Fused uint64 `json:"fused"`
	// Latency is the request service-latency distribution, measured from
	// admission (enqueue) to reply, so it includes queueing delay.
	Latency obs.LatencySummary `json:"latency"`
}

// ServeAdmission is the admission controller's ledger.
type ServeAdmission struct {
	// QueueShed counts requests shed because the sticky worker's queue was
	// full at enqueue time.
	QueueShed uint64 `json:"queue_shed"`
	// SaturationShed counts requests shed because the contention window was
	// saturated (slow-path writer load at or above the policy's
	// ContentionWindow) while the worker queue was backlogged.
	SaturationShed uint64 `json:"saturation_shed"`
	// DeadlineShed counts requests shed at dequeue because their deadline
	// expired while queued (also counted per endpoint in Endpoints.Shed).
	DeadlineShed uint64 `json:"deadline_shed"`
}

// ServeTM summarizes the merged worker-thread TM counters: the service-level
// view of the engine's tm.Stats.
type ServeTM struct {
	// Commits counts committed transactions across all workers.
	Commits uint64 `json:"commits"`
	// FastPathCommits/SlowPathCommits/SerialCommits split Commits by path.
	FastPathCommits uint64 `json:"fast_path_commits"`
	SlowPathCommits uint64 `json:"slow_path_commits"`
	SerialCommits   uint64 `json:"serial_commits"`
	// Fallbacks counts fast-path surrenders to the slow path.
	Fallbacks uint64 `json:"fallbacks"`
	// HTMAborts is the total hardware aborts of any kind.
	HTMAborts uint64 `json:"htm_aborts"`
	// STMRestarts counts software-path restarts.
	STMRestarts uint64 `json:"stm_restarts"`
	// AbortRate is HTMAborts/(HTMAborts+Commits): the fraction of hardware
	// attempts that aborted (0 when idle).
	AbortRate float64 `json:"abort_rate"`
}

// ParseServeDump decodes and schema-validates an rhserve.v1 dump.
func ParseServeDump(data []byte) (*ServeDump, error) {
	if err := validateServeDump(data); err != nil {
		return nil, err
	}
	var d ServeDump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, err
	}
	return &d, nil
}

// validateServeDump checks an rhserve.v1 dump: the versioned envelope, the
// endpoint vocabulary and row consistency, ordered latency quantiles, and
// the embedded obs snapshot (validated by the rhbench.v2 rules). Unknown
// fields are rejected so the Go structs and the emitted schema cannot
// diverge.
func validateServeDump(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var d ServeDump
	if err := dec.Decode(&d); err != nil {
		return fmt.Errorf("dump does not parse as %s: %w", ServeSchemaVersion, err)
	}
	if d.SchemaVersion != ServeSchemaVersion {
		return fmt.Errorf("schema_version = %q, want %q", d.SchemaVersion, ServeSchemaVersion)
	}
	if d.Algo == "" {
		return fmt.Errorf("empty algo")
	}
	if d.Workers < 1 {
		return fmt.Errorf("workers = %d, want >= 1", d.Workers)
	}
	if d.Keys < 1 {
		return fmt.Errorf("keys = %d, want >= 1", d.Keys)
	}
	if d.UptimeSec <= 0 {
		return fmt.Errorf("uptime_sec = %g, want > 0", d.UptimeSec)
	}
	if d.Endpoints == nil {
		return fmt.Errorf("endpoints is null, want an array")
	}
	known := make(map[string]bool, len(ServeEndpointNames))
	for _, n := range ServeEndpointNames {
		known[n] = true
	}
	seen := map[string]bool{}
	for _, ep := range d.Endpoints {
		if !known[ep.Endpoint] {
			return fmt.Errorf("unknown endpoint %q", ep.Endpoint)
		}
		if seen[ep.Endpoint] {
			return fmt.Errorf("duplicate endpoint %q", ep.Endpoint)
		}
		seen[ep.Endpoint] = true
		if err := validateServeEndpoint(&ep); err != nil {
			return fmt.Errorf("endpoint %s: %w", ep.Endpoint, err)
		}
	}
	prevDepth := 0
	for _, b := range d.Pipeline {
		if b.Depth < 1 || b.Depth&(b.Depth-1) != 0 {
			return fmt.Errorf("pipeline depth %d is not a positive power of two", b.Depth)
		}
		if b.Depth <= prevDepth {
			return fmt.Errorf("pipeline depths not strictly ascending (%d after %d)", b.Depth, prevDepth)
		}
		prevDepth = b.Depth
		if b.Drains == 0 {
			return fmt.Errorf("pipeline depth %d has zero drains (empty buckets are omitted)", b.Depth)
		}
	}
	if sc := d.SnapScan; sc != nil {
		if sc.Attempts == 0 {
			return fmt.Errorf("snapscan with zero attempts (idle ledger is omitted)")
		}
		if sc.Hits+sc.Fallbacks != sc.Attempts {
			return fmt.Errorf("snapscan hits %d + fallbacks %d != attempts %d",
				sc.Hits, sc.Fallbacks, sc.Attempts)
		}
	}
	if p := d.Persist; p != nil {
		if p.LogRecords < p.LogAppends {
			return fmt.Errorf("persist log_records %d < log_appends %d", p.LogRecords, p.LogAppends)
		}
		if p.Fsyncs < p.FsyncGroups {
			return fmt.Errorf("persist fsyncs %d < fsync_groups %d", p.Fsyncs, p.FsyncGroups)
		}
		if p.Durable > p.Appended {
			return fmt.Errorf("persist durable %d ahead of appended %d", p.Durable, p.Appended)
		}
	}
	if d.Obs != nil {
		if err := validateSnapshot(d.Obs); err != nil {
			return fmt.Errorf("obs: %w", err)
		}
	}
	return nil
}

func validateServeEndpoint(ep *ServeEndpoint) error {
	if ep.Requests == 0 {
		return fmt.Errorf("zero requests (idle endpoints are omitted)")
	}
	if ep.Errors+ep.Shed > ep.Requests {
		return fmt.Errorf("errors %d + shed %d exceed requests %d", ep.Errors, ep.Shed, ep.Requests)
	}
	if ep.Fused > ep.Requests {
		return fmt.Errorf("fused %d exceeds requests %d", ep.Fused, ep.Requests)
	}
	l := &ep.Latency
	if l.Count > ep.Requests {
		return fmt.Errorf("latency count %d exceeds requests %d", l.Count, ep.Requests)
	}
	if l.MaxNS > l.SumNS {
		return fmt.Errorf("max_ns %d > sum_ns %d", l.MaxNS, l.SumNS)
	}
	if l.P50NS > l.P90NS || l.P90NS > l.P99NS || l.P99NS > l.P999NS || l.P999NS > l.MaxNS {
		return fmt.Errorf("quantiles not ordered (p50=%d p90=%d p99=%d p999=%d max=%d)",
			l.P50NS, l.P90NS, l.P99NS, l.P999NS, l.MaxNS)
	}
	return nil
}
