package bench

import (
	"sync/atomic"

	"rhnorec/internal/conformance"
	"rhnorec/internal/tm"
)

// ScenarioWorkload adapts a conformance-registry scenario to the benchmark
// harness at the given scale. The returned workload implements
// InvariantWorkload, so Run folds the scenario's oracle into the Result
// (Violations, CheckError) and the dump carries them for the SLO gate. A
// worker op that returns an error (which Run treats as "stop the point")
// is also counted as a violation so it cannot end a run silently.
func ScenarioWorkload(sc conformance.Scenario, scale conformance.Scale) WorkloadFactory {
	return func() Workload {
		return &scenarioWorkload{sc: sc, inst: sc.New(scale)}
	}
}

// ScenarioWorkloads returns one factory per registry scenario, in registry
// order — the workload set of the scenarios experiment and the CI
// conformance-matrix gate.
func ScenarioWorkloads(scale conformance.Scale) []WorkloadFactory {
	scs := conformance.Scenarios()
	factories := make([]WorkloadFactory, len(scs))
	for i, sc := range scs {
		factories[i] = ScenarioWorkload(sc, scale)
	}
	return factories
}

type scenarioWorkload struct {
	sc         conformance.Scenario
	inst       conformance.Instance
	violations atomic.Uint64
}

func (w *scenarioWorkload) Name() string { return w.sc.Name }

func (w *scenarioWorkload) Setup(th tm.Thread) error { return w.inst.Setup(th) }

func (w *scenarioWorkload) NewOp(th tm.Thread, seed int64) func() error {
	report := func(string) { w.violations.Add(1) }
	op := w.inst.NewWorker(th, seed, report)
	return func() error {
		if err := op(); err != nil {
			w.violations.Add(1)
			return err
		}
		return nil
	}
}

func (w *scenarioWorkload) Check(sys tm.System) error { return w.inst.Check(sys) }

func (w *scenarioWorkload) Violations() uint64 { return w.violations.Load() }
