package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"rhnorec/internal/obs"
)

func TestJSONRecorderRoundTrip(t *testing.T) {
	var rec JSONRecorder
	rec.Record(Result{Workload: "rbtree-10%", Algo: "rh-norec", Threads: 8,
		Ops: 1234, Elapsed: 500 * time.Millisecond, Throughput: 2468})
	rec.Record(Result{Workload: "rbtree-10%", Algo: "htm-only", Threads: 1,
		Ops: 10, Elapsed: time.Second, Throughput: 10})
	if rec.Len() != 2 {
		t.Fatalf("Len = %d, want 2", rec.Len())
	}
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got JSONDump
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if got.SchemaVersion != SchemaVersion {
		t.Errorf("schema_version = %q, want %q", got.SchemaVersion, SchemaVersion)
	}
	want := []JSONPoint{
		{Workload: "rbtree-10%", Algo: "rh-norec", Threads: 8, Ops: 1234, ElapsedSec: 0.5, OpsPerSec: 2468},
		{Workload: "rbtree-10%", Algo: "htm-only", Threads: 1, Ops: 10, ElapsedSec: 1, OpsPerSec: 10},
	}
	for i := range want {
		if got.Points[i] != want[i] {
			t.Errorf("point %d = %+v, want %+v", i, got.Points[i], want[i])
		}
	}
	// The plotting scripts key on these exact names.
	for _, key := range []string{`"schema_version"`, `"points"`, `"workload"`, `"algo"`, `"threads"`, `"ops"`, `"elapsed_sec"`, `"ops_per_sec"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("output missing field %s", key)
		}
	}
	// An obs-less point must not carry an obs key (omitempty contract).
	if strings.Contains(buf.String(), `"obs"`) {
		t.Error("obs key present on a run made without observability")
	}
}

func TestJSONRecorderCarriesObsSnapshot(t *testing.T) {
	r := obs.NewRecorder(obs.Config{})
	r.RecordPhase(obs.PhaseFast, 100)
	r.RecordAbort(obs.CauseConflict, 1, 0)
	var rec JSONRecorder
	rec.Record(Result{Workload: "w", Algo: "a", Threads: 1, Obs: r.Snapshot()})
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got JSONDump
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	snap := got.Points[0].Obs
	if snap == nil {
		t.Fatal("obs snapshot dropped")
	}
	if len(snap.Phases) != 1 || snap.Phases[0].Phase != "fast" || snap.Phases[0].Count != 1 {
		t.Errorf("phases = %+v", snap.Phases)
	}
	if len(snap.Aborts) != 1 || snap.Aborts[0].Cause != "conflict" {
		t.Errorf("aborts = %+v", snap.Aborts)
	}
}

func TestJSONRecorderEmptyIsVersionedEnvelope(t *testing.T) {
	var rec JSONRecorder
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got JSONDump
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != SchemaVersion {
		t.Errorf("schema_version = %q, want %q", got.SchemaVersion, SchemaVersion)
	}
	if got.Points == nil || len(got.Points) != 0 {
		t.Errorf("points = %#v, want empty non-null array", got.Points)
	}
	if strings.Contains(buf.String(), "null") {
		t.Errorf("empty dump contains null: %s", buf.String())
	}
}

func TestWriteTracesEmptyIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraces(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimSpace(buf.String()); s != "[]" {
		t.Errorf("empty traces wrote %q, want []", s)
	}
}
