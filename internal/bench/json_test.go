package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestJSONRecorderRoundTrip(t *testing.T) {
	var rec JSONRecorder
	rec.Record(Result{Workload: "rbtree-10%", Algo: "rh-norec", Threads: 8,
		Ops: 1234, Elapsed: 500 * time.Millisecond, Throughput: 2468})
	rec.Record(Result{Workload: "rbtree-10%", Algo: "htm-only", Threads: 1,
		Ops: 10, Elapsed: time.Second, Throughput: 10})
	if rec.Len() != 2 {
		t.Fatalf("Len = %d, want 2", rec.Len())
	}
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got []JSONPoint
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	want := []JSONPoint{
		{Workload: "rbtree-10%", Algo: "rh-norec", Threads: 8, Ops: 1234, ElapsedSec: 0.5, OpsPerSec: 2468},
		{Workload: "rbtree-10%", Algo: "htm-only", Threads: 1, Ops: 10, ElapsedSec: 1, OpsPerSec: 10},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("point %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// The plotting scripts key on these exact names.
	for _, key := range []string{`"workload"`, `"algo"`, `"threads"`, `"ops"`, `"elapsed_sec"`, `"ops_per_sec"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("output missing field %s", key)
		}
	}
}

func TestJSONRecorderEmptyIsArray(t *testing.T) {
	var rec JSONRecorder
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimSpace(buf.String()); s != "[]" {
		t.Errorf("empty recorder wrote %q, want []", s)
	}
}
