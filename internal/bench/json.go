package bench

import (
	"encoding/json"
	"io"
)

// JSONPoint is the machine-readable form of one benchmark point: one
// (workload, algorithm, thread-count) cell of a figure. Field names are
// stable — downstream plotting scripts key on them.
type JSONPoint struct {
	Workload   string  `json:"workload"`
	Algo       string  `json:"algo"`
	Threads    int     `json:"threads"`
	Ops        uint64  `json:"ops"`
	ElapsedSec float64 `json:"elapsed_sec"`
	OpsPerSec  float64 `json:"ops_per_sec"`
}

// JSONRecorder accumulates benchmark points for a machine-readable dump.
// Chain its Record method into FigureConfig.Progress.
type JSONRecorder struct {
	points []JSONPoint
}

// Record appends one finished point. It has the FigureConfig.Progress
// signature so it can be chained directly.
func (rec *JSONRecorder) Record(r Result) {
	rec.points = append(rec.points, JSONPoint{
		Workload:   r.Workload,
		Algo:       r.Algo,
		Threads:    r.Threads,
		Ops:        r.Ops,
		ElapsedSec: r.Elapsed.Seconds(),
		OpsPerSec:  r.Throughput,
	})
}

// Len reports how many points have been recorded.
func (rec *JSONRecorder) Len() int { return len(rec.points) }

// WriteJSON emits every recorded point as an indented JSON array. An empty
// recorder writes an empty array, never null.
func (rec *JSONRecorder) WriteJSON(w io.Writer) error {
	pts := rec.points
	if pts == nil {
		pts = []JSONPoint{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pts)
}
