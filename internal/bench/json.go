package bench

import (
	"encoding/json"
	"io"

	"rhnorec/internal/obs"
	"rhnorec/internal/tm"
)

// SchemaVersion identifies the rhbench JSON dump format. Versioning
// contract (docs/METRICS.md): additive, optional fields do not bump the
// version; renaming, removing, or changing the meaning of a field does.
//
// History: rhbench.v1 was a bare JSON array of points; rhbench.v2 wraps
// the points in a versioned envelope and adds the optional per-point
// "obs" observability snapshot.
const SchemaVersion = "rhbench.v2"

// JSONDump is the versioned envelope of a machine-readable rhbench run.
type JSONDump struct {
	// SchemaVersion is always SchemaVersion ("rhbench.v2").
	SchemaVersion string `json:"schema_version"`
	// Points holds one entry per benchmark point, in completion order.
	// Never null: an empty run dumps an empty array.
	Points []JSONPoint `json:"points"`
}

// JSONPoint is the machine-readable form of one benchmark point: one
// (workload, algorithm, thread-count) cell of a figure. Field names are
// stable — downstream plotting scripts key on them.
type JSONPoint struct {
	Workload   string  `json:"workload"`
	Algo       string  `json:"algo"`
	Threads    int     `json:"threads"`
	Ops        uint64  `json:"ops"`
	ElapsedSec float64 `json:"elapsed_sec"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	// Obs is the merged observability snapshot (phase latency histograms
	// and the abort-cause taxonomy); present only when the run was made
	// with -obs.
	Obs *obs.Snapshot `json:"obs,omitempty"`
	// TM summarizes the point's transactional counters; present whenever
	// the harness ran a TM system underneath (absent from rhload's
	// client-side cells, whose server publishes its own rhserve.v1 dump).
	TM *JSONTM `json:"tm,omitempty"`
	// Violations counts invariant violations the workload's oracle
	// observed; present (zero included) only for workloads that carry an
	// invariant check — the conformance registry scenarios. The SLO gate
	// (cmd/rhgate) keys its zero-violations budget on this field.
	Violations *uint64 `json:"violations,omitempty"`
	// CheckError is the end-of-run invariant check's failure message
	// (empty on a clean pass). A failed check also counts in Violations.
	CheckError string `json:"check_error,omitempty"`
}

// JSONTM is a benchmark point's transactional summary: enough for the SLO
// gate's abort-rate budgets without shipping the whole obs snapshot.
type JSONTM struct {
	Commits     uint64 `json:"commits"`
	ReadOnly    uint64 `json:"read_only_commits"`
	HTMAborts   uint64 `json:"htm_aborts"`
	STMRestarts uint64 `json:"stm_restarts"`
	Fallbacks   uint64 `json:"fallbacks"`
	// AbortRate is HTMAborts/(HTMAborts+Commits), the serve-layer
	// definition (internal/serve metrics).
	AbortRate float64 `json:"abort_rate"`
}

// JSONRecorder accumulates benchmark points for a machine-readable dump.
// Chain its Record method into FigureConfig.Progress.
type JSONRecorder struct {
	points []JSONPoint
}

// Record appends one finished point. It has the FigureConfig.Progress
// signature so it can be chained directly.
func (rec *JSONRecorder) Record(r Result) {
	rec.points = append(rec.points, JSONPoint{
		Workload:   r.Workload,
		Algo:       r.Algo,
		Threads:    r.Threads,
		Ops:        r.Ops,
		ElapsedSec: r.Elapsed.Seconds(),
		OpsPerSec:  r.Throughput,
		Obs:        r.Obs,
		TM:         tmBlock(&r.Stats),
		Violations: r.Violations,
		CheckError: r.CheckError,
	})
}

// tmBlock summarizes a point's counters; nil when the point ran no
// transactions (e.g. rhload's client-side cells).
func tmBlock(st *tm.Stats) *JSONTM {
	aborts := st.HTMAborts()
	if st.Commits == 0 && st.ReadOnlyCommits == 0 && aborts == 0 && st.STMRestarts == 0 {
		return nil
	}
	var rate float64
	if aborts+st.Commits > 0 {
		rate = float64(aborts) / float64(aborts+st.Commits)
	}
	return &JSONTM{
		Commits:     st.Commits,
		ReadOnly:    st.ReadOnlyCommits,
		HTMAborts:   aborts,
		STMRestarts: st.STMRestarts,
		Fallbacks:   st.Fallbacks,
		AbortRate:   rate,
	}
}

// Len reports how many points have been recorded.
func (rec *JSONRecorder) Len() int { return len(rec.points) }

// Dump returns the recorded points as a versioned in-memory dump (the
// value WriteJSON would serialize), for direct comparison against a
// baseline without a file round-trip.
func (rec *JSONRecorder) Dump() *JSONDump {
	pts := rec.points
	if pts == nil {
		pts = []JSONPoint{}
	}
	return &JSONDump{SchemaVersion: SchemaVersion, Points: pts}
}

// WriteJSON emits the versioned dump, indented. An empty recorder writes
// an envelope with an empty points array, never null.
func (rec *JSONRecorder) WriteJSON(w io.Writer) error {
	pts := rec.points
	if pts == nil {
		pts = []JSONPoint{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(JSONDump{SchemaVersion: SchemaVersion, Points: pts})
}

// WriteTraces emits a JSON array of per-point event-ring traces (the
// `rhbench -trace` file format, replayed by cmd/rhtrace). An empty slice
// writes an empty array, never null.
func WriteTraces(w io.Writer, traces []obs.Trace) error {
	if traces == nil {
		traces = []obs.Trace{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(traces)
}
