package bench

import (
	"encoding/json"
	"io"

	"rhnorec/internal/obs"
)

// SchemaVersion identifies the rhbench JSON dump format. Versioning
// contract (docs/METRICS.md): additive, optional fields do not bump the
// version; renaming, removing, or changing the meaning of a field does.
//
// History: rhbench.v1 was a bare JSON array of points; rhbench.v2 wraps
// the points in a versioned envelope and adds the optional per-point
// "obs" observability snapshot.
const SchemaVersion = "rhbench.v2"

// JSONDump is the versioned envelope of a machine-readable rhbench run.
type JSONDump struct {
	// SchemaVersion is always SchemaVersion ("rhbench.v2").
	SchemaVersion string `json:"schema_version"`
	// Points holds one entry per benchmark point, in completion order.
	// Never null: an empty run dumps an empty array.
	Points []JSONPoint `json:"points"`
}

// JSONPoint is the machine-readable form of one benchmark point: one
// (workload, algorithm, thread-count) cell of a figure. Field names are
// stable — downstream plotting scripts key on them.
type JSONPoint struct {
	Workload   string  `json:"workload"`
	Algo       string  `json:"algo"`
	Threads    int     `json:"threads"`
	Ops        uint64  `json:"ops"`
	ElapsedSec float64 `json:"elapsed_sec"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	// Obs is the merged observability snapshot (phase latency histograms
	// and the abort-cause taxonomy); present only when the run was made
	// with -obs.
	Obs *obs.Snapshot `json:"obs,omitempty"`
}

// JSONRecorder accumulates benchmark points for a machine-readable dump.
// Chain its Record method into FigureConfig.Progress.
type JSONRecorder struct {
	points []JSONPoint
}

// Record appends one finished point. It has the FigureConfig.Progress
// signature so it can be chained directly.
func (rec *JSONRecorder) Record(r Result) {
	rec.points = append(rec.points, JSONPoint{
		Workload:   r.Workload,
		Algo:       r.Algo,
		Threads:    r.Threads,
		Ops:        r.Ops,
		ElapsedSec: r.Elapsed.Seconds(),
		OpsPerSec:  r.Throughput,
		Obs:        r.Obs,
	})
}

// Len reports how many points have been recorded.
func (rec *JSONRecorder) Len() int { return len(rec.points) }

// Dump returns the recorded points as a versioned in-memory dump (the
// value WriteJSON would serialize), for direct comparison against a
// baseline without a file round-trip.
func (rec *JSONRecorder) Dump() *JSONDump {
	pts := rec.points
	if pts == nil {
		pts = []JSONPoint{}
	}
	return &JSONDump{SchemaVersion: SchemaVersion, Points: pts}
}

// WriteJSON emits the versioned dump, indented. An empty recorder writes
// an envelope with an empty points array, never null.
func (rec *JSONRecorder) WriteJSON(w io.Writer) error {
	pts := rec.points
	if pts == nil {
		pts = []JSONPoint{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(JSONDump{SchemaVersion: SchemaVersion, Points: pts})
}

// WriteTraces emits a JSON array of per-point event-ring traces (the
// `rhbench -trace` file format, replayed by cmd/rhtrace). An empty slice
// writes an empty array, never null.
func WriteTraces(w io.Writer, traces []obs.Trace) error {
	if traces == nil {
		traces = []obs.Trace{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(traces)
}
