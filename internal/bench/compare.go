package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Delta is one baseline point compared against the matching point of a
// current run. Points are matched by (workload, algo, threads).
type Delta struct {
	Workload string
	Algo     string
	Threads  int
	// Baseline and Current are ops/sec — divided by the owning dump's
	// median when the comparison is normalized.
	Baseline float64
	Current  float64
	// Ratio is Current/Baseline (0 when the point is missing).
	Ratio float64
	// Missing marks a baseline point with no counterpart in the current
	// run: a coverage regression, always fatal.
	Missing bool
}

func (d Delta) String() string {
	if d.Missing {
		return fmt.Sprintf("%s/%s/t=%d: missing from current run", d.Workload, d.Algo, d.Threads)
	}
	return fmt.Sprintf("%s/%s/t=%d: %.4g -> %.4g (x%.2f)",
		d.Workload, d.Algo, d.Threads, d.Baseline, d.Current, d.Ratio)
}

// LoadDump reads and schema-validates an rhbench -json dump.
func LoadDump(path string) (*JSONDump, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if err := ValidateDump(data); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	// ValidateDump already decoded successfully; decode again for the value.
	var dump JSONDump
	if err := json.Unmarshal(data, &dump); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &dump, nil
}

// Compare matches every baseline point against the current dump. With
// normalize set, each dump's throughputs are first divided by that dump's
// own median throughput, making the comparison about relative shape
// (which algorithm/thread-count cells are fast) rather than absolute
// machine speed — the mode the CI perf gate uses, since runner hardware
// varies. Points present only in the current dump are ignored: adding
// coverage is not a regression.
func Compare(baseline, current *JSONDump, normalize bool) []Delta {
	bScale, cScale := 1.0, 1.0
	if normalize {
		bScale = 1 / medianThroughput(baseline)
		cScale = 1 / medianThroughput(current)
	}
	type key struct {
		w, a string
		t    int
	}
	cur := make(map[key]float64, len(current.Points))
	for _, p := range current.Points {
		cur[key{p.Workload, p.Algo, p.Threads}] = p.OpsPerSec * cScale
	}
	deltas := make([]Delta, 0, len(baseline.Points))
	for _, p := range baseline.Points {
		d := Delta{
			Workload: p.Workload,
			Algo:     p.Algo,
			Threads:  p.Threads,
			Baseline: p.OpsPerSec * bScale,
		}
		if c, ok := cur[key{p.Workload, p.Algo, p.Threads}]; ok {
			d.Current = c
			if d.Baseline > 0 {
				d.Ratio = c / d.Baseline
			}
		} else {
			d.Missing = true
		}
		deltas = append(deltas, d)
	}
	return deltas
}

// Regressions filters the deltas the perf gate fails on: missing points,
// and points whose throughput fell below 1-tolerance of the baseline.
// Speedups never fail — only coverage loss and slowdowns do.
func Regressions(deltas []Delta, tolerance float64) []Delta {
	var bad []Delta
	for _, d := range deltas {
		if d.Missing || d.Ratio < 1-tolerance {
			bad = append(bad, d)
		}
	}
	return bad
}

// medianThroughput returns the dump's median ops/sec (1 when the dump has
// no usable points, so normalization degenerates to identity rather than
// dividing by zero).
func medianThroughput(d *JSONDump) float64 {
	vals := make([]float64, 0, len(d.Points))
	for _, p := range d.Points {
		if p.OpsPerSec > 0 {
			vals = append(vals, p.OpsPerSec)
		}
	}
	if len(vals) == 0 {
		return 1
	}
	sort.Float64s(vals)
	if n := len(vals); n%2 == 1 {
		return vals[n/2]
	} else {
		return (vals[n/2-1] + vals[n/2]) / 2
	}
}
