package bench

import (
	"strings"
	"testing"
)

// validServeDump is a schema-conformant rhserve.v1 dump (kept minimal: one
// endpoint row, no obs block).
const validServeDump = `{
  "schema_version": "rhserve.v1",
  "algo": "rh-norec",
  "workers": 4,
  "keys": 65536,
  "uptime_sec": 12.5,
  "endpoints": [
    {
      "endpoint": "get",
      "requests": 100,
      "errors": 1,
      "shed": 2,
      "fused": 40,
      "latency": {
        "count": 97,
        "sum_ns": 970000,
        "max_ns": 50000,
        "p50_ns": 9000,
        "p90_ns": 20000,
        "p99_ns": 40000,
        "p999_ns": 45000
      }
    }
  ],
  "admission": {"queue_shed": 3, "saturation_shed": 0, "deadline_shed": 2},
  "tm": {
    "commits": 90,
    "fast_path_commits": 80,
    "slow_path_commits": 8,
    "serial_commits": 2,
    "fallbacks": 10,
    "htm_aborts": 12,
    "stm_restarts": 3,
    "abort_rate": 0.1176
  },
  "pipeline": [
    {"depth": 1, "drains": 50},
    {"depth": 8, "drains": 6}
  ],
  "snapscan": {"attempts": 20, "hits": 18, "fallbacks": 2}
}`

func TestValidateServeDumpAccepts(t *testing.T) {
	if err := ValidateDump([]byte(validServeDump)); err != nil {
		t.Fatalf("valid rhserve.v1 dump rejected: %v", err)
	}
	d, err := ParseServeDump([]byte(validServeDump))
	if err != nil {
		t.Fatalf("ParseServeDump: %v", err)
	}
	if d.Algo != "rh-norec" || d.Workers != 4 || len(d.Endpoints) != 1 {
		t.Fatalf("parsed dump = %+v", d)
	}
	if d.Endpoints[0].Latency.P99NS != 40000 {
		t.Fatalf("latency block = %+v", d.Endpoints[0].Latency)
	}
}

// mutate applies one string substitution to the valid dump and expects the
// validator to reject the result with a message containing wantErr.
func mutateServe(t *testing.T, old, new, wantErr string) {
	t.Helper()
	doc := strings.Replace(validServeDump, old, new, 1)
	if doc == validServeDump {
		t.Fatalf("mutation %q -> %q did not apply", old, new)
	}
	err := ValidateDump([]byte(doc))
	if err == nil {
		t.Fatalf("mutation %q -> %q accepted, want error containing %q", old, new, wantErr)
	}
	if !strings.Contains(err.Error(), wantErr) {
		t.Fatalf("mutation %q -> %q: error %q does not contain %q", old, new, err, wantErr)
	}
}

func TestValidateServeDumpRejections(t *testing.T) {
	// Unknown fields (struct drift) are rejected.
	mutateServe(t, `"workers": 4`, `"workers": 4, "extra": 1`, "unknown field")
	// Envelope rules.
	mutateServe(t, `"algo": "rh-norec"`, `"algo": ""`, "empty algo")
	mutateServe(t, `"workers": 4`, `"workers": 0`, "workers")
	mutateServe(t, `"keys": 65536`, `"keys": 0`, "keys")
	mutateServe(t, `"uptime_sec": 12.5`, `"uptime_sec": 0`, "uptime_sec")
	// Endpoint vocabulary and row consistency.
	mutateServe(t, `"endpoint": "get"`, `"endpoint": "delete"`, "unknown endpoint")
	mutateServe(t, `"requests": 100`, `"requests": 0`, "zero requests")
	mutateServe(t, `"errors": 1`, `"errors": 99`, "exceed requests")
	mutateServe(t, `"fused": 40`, `"fused": 101`, "exceeds requests")
	mutateServe(t, `"count": 97`, `"count": 101`, "exceeds requests")
	// Quantile ordering.
	mutateServe(t, `"p99_ns": 40000`, `"p99_ns": 46000`, "not ordered")
	mutateServe(t, `"max_ns": 50000`, `"max_ns": 1000000000`, "max_ns")
	// Pipeline bucket rules: power-of-two depths, strictly ascending,
	// empty buckets omitted.
	mutateServe(t, `{"depth": 8, "drains": 6}`, `{"depth": 6, "drains": 6}`, "power of two")
	mutateServe(t, `{"depth": 8, "drains": 6}`, `{"depth": 1, "drains": 6}`, "ascending")
	mutateServe(t, `{"depth": 8, "drains": 6}`, `{"depth": 8, "drains": 0}`, "zero drains")
	// SnapScan ledger rules: idle ledger omitted, hits+fallbacks==attempts.
	mutateServe(t, `"snapscan": {"attempts": 20, "hits": 18, "fallbacks": 2}`,
		`"snapscan": {"attempts": 0, "hits": 0, "fallbacks": 0}`, "zero attempts")
	mutateServe(t, `"snapscan": {"attempts": 20, "hits": 18, "fallbacks": 2}`,
		`"snapscan": {"attempts": 20, "hits": 18, "fallbacks": 3}`, "!= attempts")
}

func TestValidateServeDumpDuplicateEndpoint(t *testing.T) {
	row := `{
      "endpoint": "get",
      "requests": 1, "errors": 0, "shed": 0, "fused": 0,
      "latency": {"count": 1, "sum_ns": 10, "max_ns": 10,
        "p50_ns": 10, "p90_ns": 10, "p99_ns": 10, "p999_ns": 10}
    }`
	doc := strings.Replace(validServeDump, `"endpoints": [`, `"endpoints": [`+row+",", 1)
	err := ValidateDump([]byte(doc))
	if err == nil || !strings.Contains(err.Error(), "duplicate endpoint") {
		t.Fatalf("duplicate endpoint rows: err = %v", err)
	}
}

// TestValidateDumpDispatch pins the schema_version dispatch: rhbench.v2
// documents keep flowing through the benchmark rules (their error messages
// are asserted by schema_test.go), and rhserve.v1 documents reach the
// service rules.
func TestValidateDumpDispatch(t *testing.T) {
	err := ValidateDump([]byte(`{"schema_version": "rhserve.v1"}`))
	if err == nil || !strings.Contains(err.Error(), "empty algo") {
		t.Fatalf("rhserve.v1 skeleton routed wrong: %v", err)
	}
	err = ValidateDump([]byte(`{"schema_version": "rhbench.v2", "points": []}`))
	if err != nil {
		t.Fatalf("rhbench.v2 skeleton rejected: %v", err)
	}
	err = ValidateDump([]byte(`{"schema_version": "rhserve.v9"}`))
	if err == nil || !strings.Contains(err.Error(), "schema_version") {
		t.Fatalf("unknown version fell through wrong: %v", err)
	}
}
