package bench

import (
	"bytes"
	"encoding/json"
	"fmt"

	"rhnorec/internal/obs"
)

// ValidateDump checks a versioned JSON dump against its schema, dispatching
// on the envelope's schema_version: rhbench.v2 dumps (rhbench -json) get the
// benchmark-point rules below, rhserve.v1 dumps (the KV service's /metrics
// snapshot, serve.go) get the service rules. For rhbench.v2 that means the
// versioned envelope, the required per-point fields and their ranges, and —
// when a point carries an obs snapshot — the phase/cause enum names and the
// internal consistency of each histogram (bucket counts summing to the
// sample count, ordered quantiles). Field-name drift is caught by decoding
// with unknown fields disallowed, so the Go structs in this package stay
// the single source of truth for both schemas. CI runs this over real dumps
// (the obs-smoke and serve-smoke jobs) so the documented schemas and the
// emitted ones cannot diverge.
func ValidateDump(data []byte) error {
	var probe struct {
		SchemaVersion string `json:"schema_version"`
	}
	// A probe that does not parse falls through to the rhbench.v2 decoder,
	// whose error names the expected format.
	if err := json.Unmarshal(data, &probe); err == nil && probe.SchemaVersion == ServeSchemaVersion {
		return validateServeDump(data)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var dump JSONDump
	if err := dec.Decode(&dump); err != nil {
		return fmt.Errorf("dump does not parse as %s: %w", SchemaVersion, err)
	}
	if dump.SchemaVersion != SchemaVersion {
		return fmt.Errorf("schema_version = %q, want %q", dump.SchemaVersion, SchemaVersion)
	}
	if dump.Points == nil {
		return fmt.Errorf("points is null, want an array")
	}
	for i, p := range dump.Points {
		if err := validatePoint(&p); err != nil {
			return fmt.Errorf("point %d (%s/%s/t=%d): %w", i, p.Workload, p.Algo, p.Threads, err)
		}
	}
	return nil
}

func validatePoint(p *JSONPoint) error {
	if p.Workload == "" {
		return fmt.Errorf("empty workload")
	}
	if p.Algo == "" {
		return fmt.Errorf("empty algo")
	}
	if p.Threads < 1 {
		return fmt.Errorf("threads = %d, want >= 1", p.Threads)
	}
	if p.ElapsedSec <= 0 {
		return fmt.Errorf("elapsed_sec = %g, want > 0", p.ElapsedSec)
	}
	if p.OpsPerSec < 0 {
		return fmt.Errorf("ops_per_sec = %g, want >= 0", p.OpsPerSec)
	}
	if p.Obs != nil {
		if err := validateSnapshot(p.Obs); err != nil {
			return fmt.Errorf("obs: %w", err)
		}
	}
	if p.TM != nil {
		t := p.TM
		if t.AbortRate < 0 || t.AbortRate > 1 {
			return fmt.Errorf("tm: abort_rate = %g, want in [0,1]", t.AbortRate)
		}
		if t.Commits == 0 && t.ReadOnly == 0 && t.HTMAborts == 0 && t.STMRestarts == 0 {
			return fmt.Errorf("tm: all-zero block (zero blocks are omitted)")
		}
	}
	if p.CheckError != "" && p.Violations == nil {
		return fmt.Errorf("check_error set without violations (a failed check counts as one)")
	}
	return nil
}

func validateSnapshot(s *obs.Snapshot) error {
	if s.Phases == nil || s.Aborts == nil {
		return fmt.Errorf("phases/aborts must be arrays, not null")
	}
	for _, ph := range s.Phases {
		if _, ok := obs.PhaseByName(ph.Phase); !ok {
			return fmt.Errorf("unknown phase %q", ph.Phase)
		}
		if ph.Count == 0 {
			return fmt.Errorf("phase %s: zero count (empty phases are omitted)", ph.Phase)
		}
		if ph.MaxNS > ph.SumNS {
			return fmt.Errorf("phase %s: max_ns %d > sum_ns %d", ph.Phase, ph.MaxNS, ph.SumNS)
		}
		if ph.P50NS > ph.P90NS || ph.P90NS > ph.P99NS || ph.P99NS > ph.MaxNS {
			return fmt.Errorf("phase %s: quantiles not ordered (p50=%d p90=%d p99=%d max=%d)",
				ph.Phase, ph.P50NS, ph.P90NS, ph.P99NS, ph.MaxNS)
		}
		var total uint64
		var prevLow uint64
		for i, b := range ph.Buckets {
			if i > 0 && b.LowNS <= prevLow {
				return fmt.Errorf("phase %s: bucket lows not ascending", ph.Phase)
			}
			prevLow = b.LowNS
			if b.Count == 0 {
				return fmt.Errorf("phase %s: empty bucket at lo_ns=%d (empty buckets are omitted)", ph.Phase, b.LowNS)
			}
			total += b.Count
		}
		if total != ph.Count {
			return fmt.Errorf("phase %s: bucket counts sum to %d, count says %d", ph.Phase, total, ph.Count)
		}
	}
	for _, ab := range s.Aborts {
		c, ok := obs.CauseByName(ab.Cause)
		if !ok {
			return fmt.Errorf("unknown abort cause %q", ab.Cause)
		}
		if c == obs.CauseNone {
			return fmt.Errorf("cause %q must not appear in a snapshot", ab.Cause)
		}
		if ab.Count == 0 {
			return fmt.Errorf("cause %s: zero count (unobserved causes are omitted)", ab.Cause)
		}
		if ab.RetryMean < 1 {
			return fmt.Errorf("cause %s: retry_mean %g < 1 (ordinals are 1-based)", ab.Cause, ab.RetryMean)
		}
		if ab.RetryMax < 1 || float64(ab.RetryMax) < ab.RetryMean {
			return fmt.Errorf("cause %s: retry_max %d inconsistent with retry_mean %g", ab.Cause, ab.RetryMax, ab.RetryMean)
		}
	}
	for _, pd := range s.Policy {
		if _, ok := obs.PolicyDecisionByName(pd.Decision); !ok {
			return fmt.Errorf("unknown policy decision %q", pd.Decision)
		}
		if pd.Count == 0 {
			return fmt.Errorf("policy decision %s: zero count (untaken decisions are omitted)", pd.Decision)
		}
	}
	for _, fr := range s.Filter {
		if _, ok := obs.FilterKindByName(fr.Kind); !ok {
			return fmt.Errorf("unknown filter kind %q", fr.Kind)
		}
		if fr.Count == 0 {
			return fmt.Errorf("filter kind %s: zero count (unfired counters are omitted)", fr.Kind)
		}
	}
	return nil
}
