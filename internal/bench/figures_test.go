package bench_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rhnorec/internal/bench"
)

// tinyFigure keeps figure smoke tests fast: two algorithms, one thread
// count, short points.
func tinyFigure() bench.FigureConfig {
	algos := []bench.Algo{}
	for _, name := range []string{"hy-norec", "rh-norec"} {
		a, _ := bench.AlgoByName(name)
		algos = append(algos, a)
	}
	return bench.FigureConfig{
		Algos:    algos,
		Threads:  []int{2},
		Duration: 10 * time.Millisecond,
	}
}

func TestFigureDriversProduceAllColumns(t *testing.T) {
	cases := []struct {
		name string
		run  func(buf *bytes.Buffer) error
		want []string
	}{
		{"fig4", func(b *bytes.Buffer) error { return bench.Figure4(b, tinyFigure()) },
			[]string{"rbtree-4", "rbtree-10", "rbtree-40"}},
		{"fig5", func(b *bytes.Buffer) error { return bench.Figure5(b, tinyFigure()) },
			[]string{"vacation-low", "intruder", "genome"}},
		{"fig6", func(b *bytes.Buffer) error { return bench.Figure6(b, tinyFigure()) },
			[]string{"vacation-high", "ssca2", "yada"}},
		{"extra", func(b *bytes.Buffer) error { return bench.Extra(b, tinyFigure()) },
			[]string{"kmeans", "labyrinth"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := c.run(&buf); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			for _, w := range c.want {
				if !strings.Contains(out, "workload: "+w) {
					t.Errorf("%s output missing workload %q", c.name, w)
				}
			}
			if !strings.Contains(out, "analysis: rh-norec") {
				t.Errorf("%s output missing rh-norec analysis rows", c.name)
			}
		})
	}
}

func TestRHVariantsDistinctAndRunnable(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range bench.RHVariants() {
		if seen[a.Name] {
			t.Errorf("duplicate variant %q", a.Name)
		}
		seen[a.Name] = true
		res, err := bench.Run(bench.RunConfig{
			Workload: bench.RBTree(bench.RBTreeConfig{Size: 64, MutationRatio: 0.3})(),
			Algo:     a,
			Threads:  2,
			Duration: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if res.Ops == 0 {
			t.Errorf("%s: no ops", a.Name)
		}
	}
	for _, want := range []string{"rh-norec", "rh-noprefix", "rh-nopostfix", "rh-noadapt", "rh-allsoft", "norec-lazy"} {
		if !seen[want] {
			t.Errorf("missing variant %q", want)
		}
	}
}
