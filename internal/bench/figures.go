package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"rhnorec/internal/conformance"
	"rhnorec/internal/htm"
	"rhnorec/internal/tm"
)

// SweepConfig describes one workload's thread sweep across algorithms —
// one column of a paper figure.
type SweepConfig struct {
	Factory  WorkloadFactory
	Algos    []Algo
	Threads  []int
	Duration time.Duration
	MemWords int
	// Stripes sets the memory's seqlock stripe count (see RunConfig).
	Stripes int
	// SigBits/Combine enable signature publication and slow-path group
	// commit for every point (see RunConfig).
	SigBits int
	Combine bool
	HTM     htm.Config
	Policy  tm.RetryPolicy
	// Repeat runs each point this many times and reports the
	// median-throughput run (noise control; default 1).
	Repeat int
	// Progress, when non-nil, receives each point as it completes.
	Progress func(Result)
	// Obs/ObsRing enable per-thread observability (see RunConfig).
	Obs     bool
	ObsRing int
}

// Sweep holds one workload's results across algorithms and thread counts.
type Sweep struct {
	Workload string
	Threads  []int
	Order    []string
	Results  map[string][]Result
}

// DefaultThreads is the paper's sweep range on the 16-way Haswell.
func DefaultThreads() []int { return []int{1, 2, 4, 8, 12, 16} }

// RunSweep executes the sweep.
func RunSweep(cfg SweepConfig) (*Sweep, error) {
	if len(cfg.Algos) == 0 {
		cfg.Algos = StandardAlgos()
	}
	if len(cfg.Threads) == 0 {
		cfg.Threads = DefaultThreads()
	}
	if cfg.Repeat <= 0 {
		cfg.Repeat = 1
	}
	s := &Sweep{Threads: cfg.Threads, Results: make(map[string][]Result)}
	for _, algo := range cfg.Algos {
		s.Order = append(s.Order, algo.Name)
		for _, n := range cfg.Threads {
			runs := make([]Result, 0, cfg.Repeat)
			for r := 0; r < cfg.Repeat; r++ {
				res, err := Run(RunConfig{
					Workload: cfg.Factory(),
					Algo:     algo,
					Threads:  n,
					Duration: cfg.Duration,
					MemWords: cfg.MemWords,
					Stripes:  cfg.Stripes,
					SigBits:  cfg.SigBits,
					Combine:  cfg.Combine,
					HTM:      cfg.HTM,
					Policy:   cfg.Policy,
					Obs:      cfg.Obs,
					ObsRing:  cfg.ObsRing,
				})
				if err != nil {
					return nil, err
				}
				runs = append(runs, res)
			}
			sort.Slice(runs, func(i, j int) bool { return runs[i].Throughput < runs[j].Throughput })
			res := runs[len(runs)/2] // median run
			s.Workload = res.Workload
			s.Results[algo.Name] = append(s.Results[algo.Name], res)
			if cfg.Progress != nil {
				cfg.Progress(res)
			}
		}
	}
	return s, nil
}

// Print renders the sweep in the paper's figure layout: a throughput row
// block followed by the per-hybrid analysis rows (Figure 4's rows 2–5).
func (s *Sweep) Print(w io.Writer) {
	fmt.Fprintf(w, "workload: %s\n", s.Workload)
	fmt.Fprintf(w, "%-14s", "threads")
	for _, n := range s.Threads {
		fmt.Fprintf(w, "%12d", n)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "throughput (ops/sec):")
	checked := false
	for _, name := range s.Order {
		fmt.Fprintf(w, "%-14s", name)
		for _, r := range s.Results[name] {
			fmt.Fprintf(w, "%12.3g", r.Throughput)
			if r.Violations != nil {
				checked = true
			}
		}
		fmt.Fprintln(w)
	}
	if checked {
		fmt.Fprintln(w, "invariant violations:")
		for _, name := range s.Order {
			fmt.Fprintf(w, "%-14s", name)
			for _, r := range s.Results[name] {
				switch {
				case r.Violations == nil:
					fmt.Fprintf(w, "%12s", "-")
				case *r.Violations == 0:
					fmt.Fprintf(w, "%12s", "ok")
				default:
					fmt.Fprintf(w, "%12d", *r.Violations)
				}
			}
			fmt.Fprintln(w)
		}
	}
	for _, name := range s.Order {
		if name != "hy-norec" && name != "rh-norec" {
			continue
		}
		fmt.Fprintf(w, "analysis: %s\n", name)
		rows := []struct {
			label string
			get   func(st *tm.Stats) float64
		}{
			{"  conflicts/op", func(st *tm.Stats) float64 { return st.ConflictAbortsPerOp() }},
			{"  capacity/op", func(st *tm.Stats) float64 { return st.CapacityAbortsPerOp() }},
			{"  restarts/slow", func(st *tm.Stats) float64 { return st.RestartsPerSlowPath() }},
			{"  slow-ratio", func(st *tm.Stats) float64 { return st.SlowPathRatio() }},
		}
		if name == "rh-norec" {
			rows = append(rows,
				struct {
					label string
					get   func(st *tm.Stats) float64
				}{"  prefix-succ", func(st *tm.Stats) float64 { return st.PrefixSuccessRatio() }},
				struct {
					label string
					get   func(st *tm.Stats) float64
				}{"  postfix-succ", func(st *tm.Stats) float64 { return st.PostfixSuccessRatio() }},
			)
		}
		for _, row := range rows {
			fmt.Fprintf(w, "%-14s", row.label)
			for i := range s.Results[name] {
				fmt.Fprintf(w, "%12.4f", row.get(&s.Results[name][i].Stats))
			}
			fmt.Fprintln(w)
		}
	}
}

// PrintTSV renders the sweep as one tab-separated row per point, with a
// header, for downstream plotting.
func (s *Sweep) PrintTSV(w io.Writer) {
	fmt.Fprintln(w, "workload\talgo\tthreads\tops\tthroughput\tconflicts_per_op\tcapacity_per_op\trestarts_per_slow\tslow_ratio\tprefix_succ\tpostfix_succ")
	for _, name := range s.Order {
		for i := range s.Results[name] {
			r := &s.Results[name][i]
			st := &r.Stats
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%.1f\t%.6f\t%.6f\t%.6f\t%.6f\t%.4f\t%.4f\n",
				s.Workload, name, r.Threads, r.Ops, r.Throughput,
				st.ConflictAbortsPerOp(), st.CapacityAbortsPerOp(),
				st.RestartsPerSlowPath(), st.SlowPathRatio(),
				st.PrefixSuccessRatio(), st.PostfixSuccessRatio())
		}
	}
}

// FigureConfig parameterizes a whole figure reproduction.
type FigureConfig struct {
	Algos    []Algo
	Threads  []int
	Duration time.Duration
	MemWords int
	// Stripes sets the memory's seqlock stripe count (see RunConfig).
	Stripes int
	// SigBits/Combine enable signature publication and slow-path group
	// commit for every point (see RunConfig).
	SigBits int
	Combine bool
	HTM     htm.Config
	Policy  tm.RetryPolicy
	// Repeat runs each point this many times and keeps the
	// median-throughput run (noise control; default 1).
	Repeat   int
	Progress func(Result)
	// TSV switches output from the paper-style table to tab-separated rows.
	TSV bool
	// Obs/ObsRing enable per-thread observability (see RunConfig).
	Obs     bool
	ObsRing int
}

func (c FigureConfig) sweep(f WorkloadFactory) SweepConfig {
	return SweepConfig{
		Factory: f, Algos: c.Algos, Threads: c.Threads, Duration: c.Duration,
		MemWords: c.MemWords, Stripes: c.Stripes, SigBits: c.SigBits,
		Combine: c.Combine, HTM: c.HTM, Policy: c.Policy,
		Repeat: c.Repeat, Progress: c.Progress, Obs: c.Obs, ObsRing: c.ObsRing,
	}
}

func runAndPrint(w io.Writer, title string, cfg FigureConfig, factories []WorkloadFactory) error {
	if !cfg.TSV {
		fmt.Fprintf(w, "==== %s ====\n", title)
	}
	for _, f := range factories {
		s, err := RunSweep(cfg.sweep(f))
		if err != nil {
			return err
		}
		if cfg.TSV {
			s.PrintTSV(w)
			continue
		}
		s.Print(w)
		fmt.Fprintln(w)
	}
	return nil
}

// Structures runs the ordered-structure comparison (rbtree vs skip list vs
// sorted list) under the configured algorithms.
func Structures(w io.Writer, cfg FigureConfig) error {
	return runAndPrint(w, "Structures: rbtree, skiplist, sortedlist (same op mix)", cfg,
		[]WorkloadFactory{
			RBTree(RBTreeConfig{Size: 2048, MutationRatio: 0.20}),
			SkipListWorkload(RBTreeConfig{Size: 2048, MutationRatio: 0.20}),
			SortedListWorkload(RBTreeConfig{Size: 128, MutationRatio: 0.20}),
		})
}

// Figure4 reproduces the RBTree figure: 10,000 nodes at 4%, 10% and 40%
// mutation ratios (paper §3.5).
func Figure4(w io.Writer, cfg FigureConfig) error {
	const size = 10000
	return runAndPrint(w, "Figure 4: 10,000-node RBTree", cfg, []WorkloadFactory{
		RBTree(RBTreeConfig{Size: size, MutationRatio: 0.04}),
		RBTree(RBTreeConfig{Size: size, MutationRatio: 0.10}),
		RBTree(RBTreeConfig{Size: size, MutationRatio: 0.40}),
	})
}

// Figure5 reproduces the Vacation-Low, Intruder and Genome columns (paper
// §3.6).
func Figure5(w io.Writer, cfg FigureConfig) error {
	return runAndPrint(w, "Figure 5: Vacation-Low, Intruder, Genome", cfg,
		[]WorkloadFactory{VacationLow(), Intruder(), Genome()})
}

// Figure6 reproduces the Vacation-High, SSCA2 and Yada columns (paper
// §3.6).
func Figure6(w io.Writer, cfg FigureConfig) error {
	return runAndPrint(w, "Figure 6: Vacation-High, SSCA2, Yada", cfg,
		[]WorkloadFactory{VacationHigh(), SSCA2(), Yada()})
}

// DisjointFigure runs the disjoint-footprint scaling workload: every
// thread commits write transactions over its own private block of cache
// lines, so under the striped substrate no two commits ever touch the
// same stripe. Sweep it at -stripes 1 versus the default to isolate the
// substrate-level commit serialization that striping removes.
func DisjointFigure(w io.Writer, cfg FigureConfig) error {
	return runAndPrint(w, "Disjoint: per-thread private lines (stripe-parallel commits)", cfg,
		[]WorkloadFactory{Disjoint(DisjointConfig{Lines: 4})})
}

// ContentionFigure runs the contention-management sweep (DESIGN.md §10):
// the hotspot workload — every transaction read-modify-writes the same two
// shared lines, so concurrent writers always conflict — against the
// disjoint workload — no conflicts at all — under the policy-variant
// algorithms. The adaptive policy should beat or match static retry on the
// hotspot (randomized backoff de-synchronizes the conflicting retries,
// the contention window keeps doomed speculations away from a hot slow
// path) while staying within noise of it on disjoint, where the policy
// machinery is pure overhead. CI's bench-regress job gates on exactly this
// sweep against the checked-in BENCH_3.json baseline.
func ContentionFigure(w io.Writer, cfg FigureConfig) error {
	if len(cfg.Algos) == 0 {
		cfg.Algos = PolicyVariants()
	}
	if cfg.MemWords == 0 {
		// Both workloads touch a handful of lines; the default
		// multi-megabyte memory only adds allocation and GC noise to the
		// short CI points this sweep feeds.
		cfg.MemWords = 1 << 18
	}
	return runAndPrint(w, "Contention: hotspot (shared lines) vs disjoint (private lines), policy variants", cfg,
		[]WorkloadFactory{
			Hotspot(HotspotConfig{Lines: 2}),
			Disjoint(DisjointConfig{Lines: 4}),
		})
}

// SignatureFigure runs the signature/combining ablation grid (DESIGN.md
// §12) over the two regimes the optimizations exist for. The hotspot
// workload under a one-line HTM write budget: every writer takes the
// software slow path and serializes on the sequence lock, so group commit
// has queued commits to drain. The shared-region scan workload under the
// default (roomy) budget: large fast-path read logs keep being re-proved
// current as private-line commits move shared stripe clocks, so signature
// filtering replaces those value sweeps with a few word compares. The
// stripe count defaults low so disjoint lines share stripes — the
// false-sharing shape the filter pays off on. Signature filtering is armed
// device-wide; it engages only for the variants whose memory actually
// publishes (SignatureVariants flips publication per point). CI's
// signature gate runs exactly this sweep against the checked-in
// BENCH_4.json baseline.
func SignatureFigure(w io.Writer, cfg FigureConfig) error {
	if len(cfg.Algos) == 0 {
		cfg.Algos = SignatureVariants(cfg.SigBits)
	}
	if cfg.MemWords == 0 {
		cfg.MemWords = 1 << 18
	}
	if cfg.Stripes == 0 {
		cfg.Stripes = 8
	}
	cfg.HTM.SignatureFiltering = true
	// Hot regime: blind publishes to two shared lines, fast path disabled so
	// every commit serializes on the clock — the convoy flat combining turns
	// into batched group commit. (A read-modify-write hotspot is semantically
	// serial: every combine attempt is correctly rejected, so the blind
	// variant is the one that can batch.)
	hot := cfg
	hot.Policy.DisableFast = true
	hot.Policy.DisablePrefix = true
	if hot.HTM.YieldPeriod == 0 {
		// Fine-grained speculation pacing: the convoy the baseline pays (and
		// combining dissolves) only materializes when windows interleave.
		hot.HTM.YieldPeriod = 3
	}
	if err := runAndPrint(w, "Signature: blind-publish hotspot, fast path off (slow-path group commit)", hot,
		[]WorkloadFactory{Hotspot(HotspotConfig{Lines: 2, Blind: true})}); err != nil {
		return err
	}
	return runAndPrint(w, "Signature: shared-region scan (signature-filtered revalidation)", cfg,
		[]WorkloadFactory{Scan(ScanConfig{ReadLines: 64})})
}

// PersistFigure runs the durability-overhead sweep (DESIGN.md §15,
// docs/PERSIST.md): the hotspot workload — every transaction
// read-modify-writes the same two shared lines, and every operation
// durable-acks before the next one — under the persist variants. The
// shape the baseline encodes: group fsync stays within a small factor of
// persist-off because concurrent waiters amortize one fsync pass per
// commit group, while fsync-per-commit pays a full fsync inside every
// commit's append (serialized under the commit window) and falls off a
// cliff as threads grow. CI's crash-recovery job gates on this sweep
// against the checked-in BENCH_7.json baseline.
func PersistFigure(w io.Writer, cfg FigureConfig) error {
	if len(cfg.Algos) == 0 {
		cfg.Algos = PersistVariants()
	}
	if cfg.MemWords == 0 {
		// The hotspot touches a handful of lines; a smaller arena keeps
		// allocation noise out of the short CI points (and out of the log's
		// persisted range bound, which spans the whole memory).
		cfg.MemWords = 1 << 18
	}
	return runAndPrint(w, "Persist: durable-acked hotspot (off vs group fsync vs fsync-per-commit)", cfg,
		[]WorkloadFactory{Hotspot(HotspotConfig{Lines: 2})})
}

// ScenariosFigure runs every conformance-registry scenario (bank, rbtree,
// session, ratelimit, inventory, graph) at soak scale under a hybrid/STM
// cross-section. Each point doubles as a conformance pass: the scenario's
// oracle runs alongside the workers and at the end of the point, and the
// violation count rides into the JSON dump for cmd/rhgate's
// zero-violations budget. This is the sweep behind the checked-in
// BENCH_8.json baseline and the CI conformance-matrix gate.
func ScenariosFigure(w io.Writer, cfg FigureConfig) error {
	if len(cfg.Algos) == 0 {
		cfg.Algos = []Algo{}
		for _, name := range []string{"lock-elision", "hy-norec", "rh-norec"} {
			a, _ := AlgoByName(name)
			cfg.Algos = append(cfg.Algos, a)
		}
	}
	if cfg.MemWords == 0 {
		// Every scenario's soak footprint is at most a few hundred lines; the
		// default multi-megabyte arena only adds GC noise to short CI points.
		cfg.MemWords = 1 << 18
	}
	return runAndPrint(w, "Scenarios: conformance registry at soak scale (invariant-checked)", cfg,
		ScenarioWorkloads(conformance.ScaleSoak))
}

// Extra reproduces the workloads the paper folds into the SSCA2 discussion
// (Kmeans and Labyrinth, §3.6) plus Bayes, which the paper omits for
// inconsistent behaviour (no claims are made about it).
func Extra(w io.Writer, cfg FigureConfig) error {
	return runAndPrint(w, "Extra: Kmeans, Labyrinth (\"similar to SSCA2\"), Bayes (omitted by the paper), §3.6", cfg,
		[]WorkloadFactory{Kmeans(), Labyrinth(), Bayes()})
}
