// Package bench is the benchmark harness that regenerates the paper's
// evaluation (Figures 4–6): duration-based throughput runs of every TM
// algorithm over the RBTree microbenchmark and the STAMP-style
// applications, with the per-figure analysis rows (HTM aborts per
// operation, slow-path restarts, slow-path ratio, prefix/postfix success
// ratios).
package bench

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rhnorec/internal/core"
	"rhnorec/internal/htm"
	"rhnorec/internal/hynorec"
	"rhnorec/internal/lockelision"
	"rhnorec/internal/mem"
	"rhnorec/internal/norec"
	"rhnorec/internal/obs"
	"rhnorec/internal/persist"
	"rhnorec/internal/phasedtm"
	"rhnorec/internal/rhtl2"
	"rhnorec/internal/tl2"
	"rhnorec/internal/tm"
)

// Workload is one benchmarkable application.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Setup builds the shared state (called once, single-threaded).
	Setup(th tm.Thread) error
	// NewOp returns the per-thread operation closure.
	NewOp(th tm.Thread, seed int64) func() error
}

// Algo is a named TM-system constructor. STM algorithms ignore dev.
type Algo struct {
	Name string
	New  func(m *mem.Memory, dev *htm.Device, pol tm.RetryPolicy) tm.System
	// Persist pins the point's durability mode, overriding the sweep-level
	// policy knob (RunConfig.Policy.Persist / rhbench -persist): when group
	// or sync, Run opens a fresh redo log (internal/persist) on a temporary
	// directory (honoring $TMPDIR; the CI gate points it at a RAM disk to
	// isolate protocol overhead from device latency), attaches it to the
	// point's memory, and durable-acks every 16-op worker batch — the
	// service's ack granularity, where one WaitDurable covers a fused batch
	// of requests. PersistOff pins persistence off even under an ambient
	// knob (the baseline cell of the persist ablation); PersistDefault
	// defers to the sweep.
	Persist tm.PersistMode
}

// StandardAlgos returns the five systems the paper benchmarks (§3.1), in
// presentation order.
func StandardAlgos() []Algo {
	return []Algo{
		{Name: "lock-elision", New: func(m *mem.Memory, d *htm.Device, p tm.RetryPolicy) tm.System {
			return lockelision.New(m, d, p)
		}},
		{Name: "norec", New: func(m *mem.Memory, _ *htm.Device, p tm.RetryPolicy) tm.System {
			return norec.NewWithPolicy(m, norec.Eager, p)
		}},
		{Name: "tl2", New: func(m *mem.Memory, _ *htm.Device, _ tm.RetryPolicy) tm.System {
			return tl2.New(m, 0)
		}},
		{Name: "hy-norec", New: func(m *mem.Memory, d *htm.Device, p tm.RetryPolicy) tm.System {
			return hynorec.New(m, d, p)
		}},
		{Name: "rh-norec", New: func(m *mem.Memory, d *htm.Device, p tm.RetryPolicy) tm.System {
			return core.New(m, d, p)
		}},
	}
}

// RHVariants returns the RH NOrec ablation variants of DESIGN.md §5: the
// full algorithm, prefix disabled, postfix disabled, prefix-length
// adaptation frozen, both small transactions disabled (degenerating to the
// Hybrid NOrec mixed path), and the lazy-NOrec STM contrast.
func RHVariants() []Algo {
	override := func(name string, tweak func(*tm.RetryPolicy)) Algo {
		return Algo{Name: name, New: func(m *mem.Memory, d *htm.Device, p tm.RetryPolicy) tm.System {
			tweak(&p)
			return core.New(m, d, p)
		}}
	}
	return []Algo{
		override("rh-norec", func(*tm.RetryPolicy) {}),
		override("rh-noprefix", func(p *tm.RetryPolicy) { p.DisablePrefix = true }),
		override("rh-nopostfix", func(p *tm.RetryPolicy) { p.DisablePostfix = true }),
		override("rh-noadapt", func(p *tm.RetryPolicy) { p.DisablePrefixAdaptation = true }),
		override("rh-allsoft", func(p *tm.RetryPolicy) { p.DisablePrefix = true; p.DisablePostfix = true }),
		{Name: "norec-lazy", New: func(m *mem.Memory, _ *htm.Device, p tm.RetryPolicy) tm.System {
			return norec.NewWithPolicy(m, norec.Lazy, p)
		}},
		{Name: "rh-tl2", New: func(m *mem.Memory, d *htm.Device, p tm.RetryPolicy) tm.System {
			return rhtl2.New(m, d, p, 0)
		}},
		{Name: "hy-norec-lazy", New: func(m *mem.Memory, d *htm.Device, p tm.RetryPolicy) tm.System {
			return hynorec.NewVariant(m, d, p, hynorec.Lazy)
		}},
		{Name: "phased-tm", New: func(m *mem.Memory, d *htm.Device, p tm.RetryPolicy) tm.System {
			return phasedtm.New(m, d, p)
		}},
	}
}

// PolicyVariants returns the contention-management ablation algorithms:
// the hybrids pinned to each retry-policy kind (overriding any -policy
// flag or RHNOREC_POLICY environment setting), so one sweep compares the
// kinds side by side. This is the algorithm set of the contention
// experiment and of the CI bench-regress gate.
func PolicyVariants() []Algo {
	rh := func(name string, k tm.PolicyKind) Algo {
		return Algo{Name: name, New: func(m *mem.Memory, d *htm.Device, p tm.RetryPolicy) tm.System {
			p.Kind = k
			return core.New(m, d, p)
		}}
	}
	return []Algo{
		rh("rh-norec+static", tm.PolicyStatic),
		rh("rh-norec+backoff", tm.PolicyBackoff),
		rh("rh-norec+adaptive", tm.PolicyAdaptive),
		{Name: "hy-norec+adaptive", New: func(m *mem.Memory, d *htm.Device, p tm.RetryPolicy) tm.System {
			p.Kind = tm.PolicyAdaptive
			return hynorec.New(m, d, p)
		}},
	}
}

// SignatureVariants returns the signature/combining ablation grid over RH
// NOrec: the baseline, signature-filtered validation alone, slow-path group
// commit alone, and both together. Signature publication is a per-memory
// setting, so the sig variants flip it on the point's fresh memory inside
// New — a -sigbits/-combine sweep flag is unnecessary for this set. This is
// the algorithm set of the signature experiment and of the CI gate against
// the checked-in BENCH_4.json baseline.
func SignatureVariants(sigBits int) []Algo {
	if sigBits <= 0 {
		sigBits = mem.MaxSigBits
	}
	v := func(name string, sig, combine bool) Algo {
		return Algo{Name: name, New: func(m *mem.Memory, d *htm.Device, p tm.RetryPolicy) tm.System {
			if sig {
				m.SetSignatureBits(sigBits)
			}
			p.Combine = combine
			return core.New(m, d, p)
		}}
	}
	return []Algo{
		v("rh-norec", false, false),
		v("rh-norec+sig", true, false),
		v("rh-norec+combine", false, true),
		v("rh-norec+sig+combine", true, true),
	}
}

// PersistVariants returns the durability-overhead ablation over RH NOrec
// (DESIGN.md §15): persistence off, the group-fsync redo log, and the
// fsync-per-commit ablation. The persisting variants pin Algo.Persist, so
// each of their points opens a fresh redo log and every operation
// durable-acks (see Algo.Persist); the baseline pins PersistOff so an
// ambient -persist/RHNOREC_PERSIST setting cannot blur the comparison.
// This is the algorithm set of the persist experiment and of the CI
// crash-recovery gate against the checked-in BENCH_7.json baseline.
func PersistVariants() []Algo {
	rh := func(name string, mode tm.PersistMode) Algo {
		return Algo{Name: name, New: func(m *mem.Memory, d *htm.Device, p tm.RetryPolicy) tm.System {
			return core.New(m, d, p)
		}, Persist: mode}
	}
	return []Algo{
		rh("rh-norec", tm.PersistOff),
		rh("rh-norec+persist", tm.PersistGroup),
		rh("rh-norec+persist-sync", tm.PersistSync),
	}
}

// AlgoByName returns the standard, ablation, policy-variant,
// signature-variant or persist-variant algorithm with the given name.
func AlgoByName(name string) (Algo, bool) {
	for _, a := range StandardAlgos() {
		if a.Name == name {
			return a, true
		}
	}
	for _, a := range RHVariants() {
		if a.Name == name {
			return a, true
		}
	}
	for _, a := range PolicyVariants() {
		if a.Name == name {
			return a, true
		}
	}
	for _, a := range SignatureVariants(0) {
		if a.Name == name {
			return a, true
		}
	}
	for _, a := range PersistVariants() {
		if a.Name == name {
			return a, true
		}
	}
	return Algo{}, false
}

// RunConfig describes one benchmark point.
type RunConfig struct {
	Workload Workload
	Algo     Algo
	Threads  int
	Duration time.Duration
	// MemWords sizes the shared memory (default 1<<22).
	MemWords int
	// Stripes sets the memory's seqlock stripe count (default
	// mem.DefaultStripes; 1 reproduces the pre-striping global-clock
	// substrate).
	Stripes int
	// SigBits, when > 0, enables write-signature publication on the memory
	// at that bloom width (see mem.SetSignatureBits), letting validators
	// skip value sweeps over provably-disjoint windows.
	SigBits int
	// Combine turns on slow-path group commit (flat combining) for the
	// algorithms that support it; equivalent to Policy.Combine.
	Combine bool
	// HTM configures the simulated hardware (zero fields take defaults).
	HTM htm.Config
	// Policy configures retries (zero fields take the paper's defaults).
	Policy tm.RetryPolicy
	// Obs attaches an observability recorder (per-phase latency histograms
	// and the abort-cause taxonomy, see internal/obs) to every worker
	// thread. Off by default: the disabled path costs one nil check per
	// instrumentation site.
	Obs bool
	// ObsRing, when > 0 (and Obs is set), additionally attaches a
	// fixed-size per-thread event ring of that many entries, drained into
	// Result.Trace after the workers stop.
	ObsRing int
}

// Result is one benchmark point's outcome.
type Result struct {
	Workload   string
	Algo       string
	Threads    int
	Ops        uint64
	Elapsed    time.Duration
	Stats      tm.Stats
	Throughput float64 // committed operations per second
	// Obs is the merged observability snapshot across all workers; nil
	// unless RunConfig.Obs was set.
	Obs *obs.Snapshot
	// Trace holds each worker's drained event ring, sorted by thread
	// index; nil unless RunConfig.ObsRing was set.
	Trace []obs.ThreadRing
	// Violations counts invariant violations the workload observed; nil
	// unless the workload carries an oracle (see InvariantWorkload).
	Violations *uint64
	// CheckError is the end-of-run invariant check's failure message,
	// empty on a clean pass; set only for oracle-carrying workloads.
	CheckError string
}

// InvariantWorkload is implemented by workloads that carry a correctness
// oracle (the conformance-registry scenarios): Run calls Check once the
// workers stop and surfaces the violation count in the Result, so a
// benchmark sweep doubles as a conformance pass and the SLO gate can
// enforce a zero-violations budget.
type InvariantWorkload interface {
	Workload
	// Check validates the end state over a quiesced system.
	Check(sys tm.System) error
	// Violations reports how many invariant violations workers observed
	// in-flight (read-only audits, in-transaction conservation checks).
	Violations() uint64
}

// Run executes one benchmark point.
func Run(cfg RunConfig) (Result, error) {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 100 * time.Millisecond
	}
	if cfg.MemWords <= 0 {
		cfg.MemWords = 1 << 22
	}
	// Each point allocates a fresh multi-megabyte memory; without a
	// collection barrier the garbage of earlier points taxes later ones,
	// biasing sweeps against whichever algorithm runs last.
	runtime.GC()
	if cfg.Stripes <= 0 {
		cfg.Stripes = mem.DefaultStripes
	}
	m := mem.NewStriped(cfg.MemWords, cfg.Stripes)
	if cfg.SigBits > 0 {
		m.SetSignatureBits(cfg.SigBits)
		cfg.HTM.SignatureFiltering = true
	}
	if cfg.Combine {
		cfg.Policy.Combine = true
	}
	// Durability: the algo's pinned mode wins, else the policy knob
	// (rhbench -persist / RHNOREC_PERSIST via WithDefaults). An armed point
	// redo-logs every commit to a throwaway directory and durable-acks every
	// op in the worker loop below.
	persistMode := cfg.Algo.Persist
	if persistMode == tm.PersistDefault {
		persistMode = cfg.Policy.WithDefaults().Persist
	}
	var plog *persist.Log
	if persistMode == tm.PersistGroup || persistMode == tm.PersistSync {
		dir, err := os.MkdirTemp("", "rhbench-persist-")
		if err != nil {
			return Result{}, fmt.Errorf("bench: persist dir: %w", err)
		}
		defer os.RemoveAll(dir)
		log, _, err := persist.Open(persist.Options{
			// The whole allocatable arena (address 0 is mem.Nil): workloads
			// allocate after New, so the range cannot be narrowed here.
			Dir: dir, Lo: mem.LineWords, Hi: mem.Addr(m.Size()),
			SyncEveryAppend: persistMode == tm.PersistSync,
		}, m.StorePlain, m.LoadPlain)
		if err != nil {
			return Result{}, fmt.Errorf("bench: persist open: %w", err)
		}
		plog = log
		defer plog.Close()
		m.SetPersister(plog)
	}
	dev := htm.NewDevice(m, cfg.HTM)
	dev.SetActiveThreads(cfg.Threads)
	sys := cfg.Algo.New(m, dev, cfg.Policy)

	setup := sys.NewThread()
	if err := cfg.Workload.Setup(setup); err != nil {
		return Result{}, fmt.Errorf("bench: %s setup on %s: %w", cfg.Workload.Name(), cfg.Algo.Name, err)
	}
	setup.Close()

	var stop atomic.Bool
	var totalOps atomic.Uint64
	var agg tm.Stats
	var aggMu sync.Mutex
	var rings []obs.ThreadRing
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Threads; i++ {
		wg.Add(1)
		go func(id int, seed int64) {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			if cfg.Obs {
				// Stats() hands back the thread's own Stats, so the recorder
				// can be attached here without any per-algorithm wiring.
				th.Stats().Obs = obs.NewRecorder(obs.Config{RingSize: cfg.ObsRing})
			}
			op := cfg.Workload.NewOp(th, seed)
			var ops uint64
			for !stop.Load() {
				// Batch the stop check to keep it off the hot path.
				for k := 0; k < 16; k++ {
					if err := op(); err != nil {
						stop.Store(true)
						return
					}
					ops++
				}
				if plog != nil {
					// Durable ack at the batch boundary: everything appended
					// so far (including this batch's commits) must reach
					// stable storage before the next batch — the service's
					// ack granularity, where one WaitDurable covers a fused
					// batch of requests. Concurrent waiters batch further
					// behind one group-fsync pass.
					if err := plog.WaitDurable(plog.Appended()); err != nil {
						stop.Store(true)
						return
					}
				}
			}
			totalOps.Add(ops)
			aggMu.Lock()
			if o := th.Stats().Obs; o.Ring() != nil {
				// Rings are per-thread (Merge does not combine them): drain
				// before the Stats merge folds the recorder into agg.
				rings = append(rings, o.DrainRing(id))
			}
			agg.Add(th.Stats())
			aggMu.Unlock()
		}(i, int64(i)*7919+17)
	}
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	if plog != nil {
		if err := plog.Err(); err != nil {
			return Result{}, fmt.Errorf("bench: persist: %w", err)
		}
	}
	elapsed := time.Since(start)
	ops := totalOps.Load()
	res := Result{
		Workload:   cfg.Workload.Name(),
		Algo:       cfg.Algo.Name,
		Threads:    cfg.Threads,
		Ops:        ops,
		Elapsed:    elapsed,
		Stats:      agg,
		Throughput: float64(ops) / elapsed.Seconds(),
	}
	if cfg.Obs {
		res.Obs = agg.Obs.Snapshot()
	}
	if len(rings) > 0 {
		sort.Slice(rings, func(i, j int) bool { return rings[i].Thread < rings[j].Thread })
		res.Trace = rings
	}
	if iw, ok := cfg.Workload.(InvariantWorkload); ok {
		if err := iw.Check(sys); err != nil {
			res.CheckError = err.Error()
		}
		v := iw.Violations()
		if res.CheckError != "" {
			v++
		}
		res.Violations = &v
	}
	return res, nil
}
