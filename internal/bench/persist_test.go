package bench

// Tests of the durability-overhead wiring: Run must arm the redo log for
// persist-pinned algorithms (and for the policy knob), durable-ack every
// operation, and keep the persist variants resolvable by name.

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rhnorec/internal/core"
	"rhnorec/internal/htm"
	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
)

func TestPersistVariantsResolve(t *testing.T) {
	for _, name := range []string{"rh-norec+persist", "rh-norec+persist-sync"} {
		a, ok := AlgoByName(name)
		if !ok {
			t.Fatalf("AlgoByName(%q) not found", name)
		}
		if a.Persist == tm.PersistDefault || a.Persist == tm.PersistOff {
			t.Fatalf("%s: persist mode %v, want an armed mode", name, a.Persist)
		}
	}
	// The plain algorithms must stay unpinned (sweep-level knob decides).
	if a, _ := AlgoByName("rh-norec"); a.Persist != tm.PersistDefault {
		t.Fatalf("rh-norec resolves with pinned persist mode %v", a.Persist)
	}
}

// TestPersistRunArms: a persist-pinned point must have a persister attached
// to its memory before the system is constructed, and still complete ops
// while durable-acking each one.
func TestPersistRunArms(t *testing.T) {
	for _, mode := range []tm.PersistMode{tm.PersistGroup, tm.PersistSync} {
		var attached bool
		res, err := Run(RunConfig{
			Workload: Hotspot(HotspotConfig{Lines: 2})(),
			Algo: Algo{Name: "probe", Persist: mode,
				New: func(m *mem.Memory, d *htm.Device, p tm.RetryPolicy) tm.System {
					attached = m.Persisting()
					return core.New(m, d, p)
				}},
			Threads:  2,
			Duration: 20 * time.Millisecond,
			MemWords: 1 << 16,
		})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if !attached {
			t.Fatalf("mode %v: no persister attached at system construction", mode)
		}
		if res.Ops == 0 {
			t.Fatalf("mode %v: zero ops completed", mode)
		}
	}
}

// TestPersistPolicyKnob: the sweep-level knob (RunConfig.Policy.Persist, the
// rhbench -persist flag) arms unpinned algorithms, and an algorithm pinned
// PersistOff stays off underneath it.
func TestPersistPolicyKnob(t *testing.T) {
	probe := func(pin tm.PersistMode, attached *bool) Algo {
		return Algo{Name: "probe", Persist: pin,
			New: func(m *mem.Memory, d *htm.Device, p tm.RetryPolicy) tm.System {
				*attached = m.Persisting()
				return core.New(m, d, p)
			}}
	}
	var on, off bool
	cfg := RunConfig{
		Workload: Hotspot(HotspotConfig{Lines: 2})(),
		Threads:  1,
		Duration: 10 * time.Millisecond,
		MemWords: 1 << 16,
		Policy:   tm.RetryPolicy{Persist: tm.PersistGroup},
	}
	cfg.Workload = Hotspot(HotspotConfig{Lines: 2})()
	cfg.Algo = probe(tm.PersistDefault, &on)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Workload = Hotspot(HotspotConfig{Lines: 2})()
	cfg.Algo = probe(tm.PersistOff, &off)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if !on {
		t.Fatal("Policy.Persist=group did not arm an unpinned algorithm")
	}
	if off {
		t.Fatal("Algo.Persist=off did not override Policy.Persist=group")
	}
}

func TestPersistFigureSmoke(t *testing.T) {
	var buf bytes.Buffer
	err := PersistFigure(&buf, FigureConfig{
		Threads:  []int{2},
		Duration: 15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"rh-norec+persist", "rh-norec+persist-sync", "hotspot"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure output missing %q:\n%s", want, out)
		}
	}
}
