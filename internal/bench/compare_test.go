package bench

import (
	"os"
	"path/filepath"
	"testing"
)

func dumpOf(points ...JSONPoint) *JSONDump {
	return &JSONDump{SchemaVersion: SchemaVersion, Points: points}
}

func pt(workload, algo string, threads int, ops float64) JSONPoint {
	return JSONPoint{Workload: workload, Algo: algo, Threads: threads,
		Ops: uint64(ops), ElapsedSec: 1, OpsPerSec: ops}
}

func TestCompareMatchesByKey(t *testing.T) {
	base := dumpOf(
		pt("hotspot-2", "rh-norec+static", 1, 100),
		pt("hotspot-2", "rh-norec+static", 2, 200),
	)
	cur := dumpOf(
		pt("hotspot-2", "rh-norec+static", 2, 190),
		pt("hotspot-2", "rh-norec+static", 1, 50),
		pt("hotspot-2", "rh-norec+adaptive", 1, 10), // extra point: ignored
	)
	deltas := Compare(base, cur, false)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2 (one per baseline point)", len(deltas))
	}
	if d := deltas[0]; d.Threads != 1 || d.Ratio != 0.5 {
		t.Errorf("t=1 delta = %+v, want ratio 0.5", d)
	}
	if d := deltas[1]; d.Threads != 2 || d.Ratio != 0.95 {
		t.Errorf("t=2 delta = %+v, want ratio 0.95", d)
	}
	bad := Regressions(deltas, 0.25)
	if len(bad) != 1 || bad[0].Threads != 1 {
		t.Errorf("Regressions(0.25) = %v, want only the t=1 halving", bad)
	}
	if bad := Regressions(deltas, 0.6); len(bad) != 0 {
		t.Errorf("Regressions(0.6) = %v, want none", bad)
	}
}

func TestCompareMissingPointAlwaysRegresses(t *testing.T) {
	base := dumpOf(pt("w", "a", 1, 100), pt("w", "a", 2, 100))
	cur := dumpOf(pt("w", "a", 1, 100))
	deltas := Compare(base, cur, false)
	bad := Regressions(deltas, 0.99)
	if len(bad) != 1 || !bad[0].Missing || bad[0].Threads != 2 {
		t.Fatalf("Regressions = %v, want the missing t=2 point regardless of tolerance", bad)
	}
}

func TestCompareNormalizeCancelsMachineSpeed(t *testing.T) {
	base := dumpOf(
		pt("w", "a", 1, 100),
		pt("w", "b", 1, 200),
		pt("w", "c", 1, 400),
	)
	// The same shape measured on a machine 10x slower.
	cur := dumpOf(
		pt("w", "a", 1, 10),
		pt("w", "b", 1, 20),
		pt("w", "c", 1, 40),
	)
	if bad := Regressions(Compare(base, cur, true), 0.01); len(bad) != 0 {
		t.Errorf("normalized compare of a uniformly-scaled dump regressed: %v", bad)
	}
	if bad := Regressions(Compare(base, cur, false), 0.25); len(bad) != 3 {
		t.Errorf("unnormalized compare should fail all 3 points, got %v", bad)
	}
	// A genuine shape change survives normalization: algo "a" collapses.
	skew := dumpOf(
		pt("w", "a", 1, 1),
		pt("w", "b", 1, 20),
		pt("w", "c", 1, 40),
	)
	bad := Regressions(Compare(base, skew, true), 0.25)
	if len(bad) != 1 || bad[0].Algo != "a" {
		t.Errorf("normalized compare of a skewed dump = %v, want just algo a", bad)
	}
}

func TestLoadDumpValidates(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema_version":"rhbench.v1","points":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDump(bad); err == nil {
		t.Fatal("LoadDump accepted a wrong schema version")
	}
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{"schema_version":"rhbench.v2","points":[{"workload":"w","algo":"a","threads":1,"ops":5,"elapsed_sec":1,"ops_per_sec":5}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := LoadDump(good)
	if err != nil {
		t.Fatalf("LoadDump: %v", err)
	}
	if len(d.Points) != 1 || d.Points[0].OpsPerSec != 5 {
		t.Fatalf("LoadDump returned %+v", d)
	}
}
