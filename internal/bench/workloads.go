package bench

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"rhnorec/internal/mem"
	"rhnorec/internal/rbtree"
	"rhnorec/internal/stamp/bayes"
	"rhnorec/internal/stamp/genome"
	"rhnorec/internal/stamp/intruder"
	"rhnorec/internal/stamp/kmeans"
	"rhnorec/internal/stamp/labyrinth"
	"rhnorec/internal/stamp/ssca2"
	"rhnorec/internal/stamp/vacation"
	"rhnorec/internal/stamp/yada"
	"rhnorec/internal/tm"
	"rhnorec/internal/txds"
)

// WorkloadFactory builds a fresh workload instance; the figure drivers
// create one per benchmark point because each point runs over fresh memory.
type WorkloadFactory func() Workload

// RBTreeConfig parameterizes the paper's microbenchmark (§3.5).
type RBTreeConfig struct {
	// Size is the steady-state node count (the paper uses 10,000); keys
	// are drawn from [0, 2*Size).
	Size int
	// MutationRatio is the fraction of operations that write (the paper
	// sweeps 4%, 10%, 40%); writes split evenly between put and delete.
	MutationRatio float64
}

// rbWorkload implements Workload for the red-black-tree microbenchmark.
type rbWorkload struct {
	cfg  RBTreeConfig
	tree rbtree.Tree
}

// RBTree returns a factory for the §3.5 microbenchmark.
func RBTree(cfg RBTreeConfig) WorkloadFactory {
	return func() Workload { return &rbWorkload{cfg: cfg} }
}

func (w *rbWorkload) Name() string {
	return fmt.Sprintf("rbtree-%d", int(w.cfg.MutationRatio*100+0.5))
}

func (w *rbWorkload) Setup(th tm.Thread) error {
	if err := th.Run(func(tx tm.Tx) error {
		w.tree = rbtree.New(tx)
		return nil
	}); err != nil {
		return err
	}
	// Populate every even key: Size nodes over a 2*Size key range, so puts
	// and deletes hold the size steady.
	const batch = 64
	for start := 0; start < w.cfg.Size; start += batch {
		end := start + batch
		if end > w.cfg.Size {
			end = w.cfg.Size
		}
		if err := th.Run(func(tx tm.Tx) error {
			for k := start; k < end; k++ {
				w.tree.Put(tx, uint64(2*k), uint64(k))
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

func (w *rbWorkload) NewOp(th tm.Thread, seed int64) func() error {
	rng := rand.New(rand.NewSource(seed))
	keyRange := uint64(2 * w.cfg.Size)
	return func() error {
		k := rng.Uint64() % keyRange
		r := rng.Float64()
		switch {
		case r < w.cfg.MutationRatio/2:
			return th.Run(func(tx tm.Tx) error {
				w.tree.Put(tx, k, k)
				return nil
			})
		case r < w.cfg.MutationRatio:
			return th.Run(func(tx tm.Tx) error {
				w.tree.Delete(tx, k)
				return nil
			})
		default:
			return th.RunReadOnly(func(tx tm.Tx) error {
				w.tree.Get(tx, k)
				return nil
			})
		}
	}
}

// DisjointConfig parameterizes the disjoint-footprint scaling workload.
type DisjointConfig struct {
	// Lines is the number of cache lines each thread's transaction writes
	// (default 4). With line-interleaved striping, a thread's Lines
	// consecutive lines land on Lines consecutive stripes, so threads'
	// footprints are stripe-disjoint as long as threads*Lines stays within
	// the stripe count.
	Lines int
}

// disjointWorkload gives every worker thread a private block of cache
// lines; each op is one write transaction that increments every line of
// the block. Under the per-stripe substrate these commits touch disjoint
// stripes and never serialize on the memory; at -stripes 1 they all
// contend on the single seqlock — the workload isolates exactly the
// substrate-level commit contention that striping removes.
type disjointWorkload struct {
	cfg  DisjointConfig
	base mem.Addr
	slot atomic.Int64
}

const disjointSlots = 64

// Disjoint returns a factory for the striping scaling workload.
func Disjoint(cfg DisjointConfig) WorkloadFactory {
	if cfg.Lines <= 0 {
		cfg.Lines = 4
	}
	return func() Workload { return &disjointWorkload{cfg: cfg} }
}

func (w *disjointWorkload) Name() string {
	return fmt.Sprintf("disjoint-%d", w.cfg.Lines)
}

func (w *disjointWorkload) Setup(th tm.Thread) error {
	return th.Run(func(tx tm.Tx) error {
		// Over-allocate one line so the slot blocks can start on a line
		// boundary: an unaligned base would let adjacent slots share their
		// boundary line's stripe.
		raw := tx.Alloc((disjointSlots*w.cfg.Lines + 1) * mem.LineWords)
		w.base = (raw + mem.LineWords - 1) &^ (mem.LineWords - 1)
		return nil
	})
}

func (w *disjointWorkload) NewOp(th tm.Thread, seed int64) func() error {
	// NewOp runs once per worker, so the atomic counter hands each worker
	// its own slot (wrapping only past disjointSlots threads).
	slot := int(w.slot.Add(1)-1) % disjointSlots
	base := w.base + mem.Addr(slot*w.cfg.Lines*mem.LineWords)
	lines := w.cfg.Lines
	return func() error {
		return th.Run(func(tx tm.Tx) error {
			for j := 0; j < lines; j++ {
				a := base + mem.Addr(j*mem.LineWords)
				tx.Store(a, tx.Load(a)+1)
			}
			return nil
		})
	}
}

// ScanConfig parameterizes the shared-region scan workload.
type ScanConfig struct {
	// ReadLines is the size in cache lines of the shared region every
	// transaction reads end to end (default 64).
	ReadLines int
}

// scanWorkload is the validation-bound workload: every transaction scans a
// large shared read-only region and increments one private line. The
// private-line commits keep stripe clocks moving under everyone else's
// scans, so each scan keeps re-proving a large read log current — but the
// foreign writes are always line-disjoint from the region, so a write-
// signature filter can prove every one of those revalidations redundant.
// This isolates exactly the value-sweep work signature filtering removes.
type scanWorkload struct {
	cfg    ScanConfig
	region mem.Addr
	priv   mem.Addr
	slot   atomic.Int64
}

// Scan returns a factory for the validation-bound scan workload.
func Scan(cfg ScanConfig) WorkloadFactory {
	if cfg.ReadLines <= 0 {
		cfg.ReadLines = 64
	}
	return func() Workload { return &scanWorkload{cfg: cfg} }
}

func (w *scanWorkload) Name() string {
	return fmt.Sprintf("scan-%d", w.cfg.ReadLines)
}

func (w *scanWorkload) Setup(th tm.Thread) error {
	return th.Run(func(tx tm.Tx) error {
		raw := tx.Alloc((w.cfg.ReadLines + disjointSlots + 1) * mem.LineWords)
		base := (raw + mem.LineWords - 1) &^ (mem.LineWords - 1)
		w.region = base
		w.priv = base + mem.Addr(w.cfg.ReadLines*mem.LineWords)
		return nil
	})
}

func (w *scanWorkload) NewOp(th tm.Thread, seed int64) func() error {
	slot := int(w.slot.Add(1)-1) % disjointSlots
	mine := w.priv + mem.Addr(slot*mem.LineWords)
	region := w.region
	lines := w.cfg.ReadLines
	return func() error {
		return th.Run(func(tx tm.Tx) error {
			var sum uint64
			for j := 0; j < lines; j++ {
				sum += tx.Load(region + mem.Addr(j*mem.LineWords))
			}
			tx.Store(mine, tx.Load(mine)+sum+1)
			return nil
		})
	}
}

// HotspotConfig parameterizes the high-contention workload.
type HotspotConfig struct {
	// Lines is the number of shared cache lines every transaction
	// read-modify-writes (default 2).
	Lines int
	// Blind makes the transactions write-only (store without the load):
	// blind publishes to hot lines commute, which is the shape flat
	// combining can batch — a read-modify-write hotspot is semantically
	// serial and every combine attempt is (correctly) rejected.
	Blind bool
}

// hotspotWorkload is the adversarial opposite of disjointWorkload: every
// thread's every transaction read-modify-writes the same few shared lines,
// so any two concurrent writers conflict. Commit rates are governed almost
// entirely by the contention-management policy — the workload the policy
// sweep uses to separate static retry from randomized backoff.
type hotspotWorkload struct {
	cfg  HotspotConfig
	base mem.Addr
}

// Hotspot returns a factory for the maximal-conflict workload.
func Hotspot(cfg HotspotConfig) WorkloadFactory {
	if cfg.Lines <= 0 {
		cfg.Lines = 2
	}
	return func() Workload { return &hotspotWorkload{cfg: cfg} }
}

func (w *hotspotWorkload) Name() string {
	if w.cfg.Blind {
		return fmt.Sprintf("hotspot-blind-%d", w.cfg.Lines)
	}
	return fmt.Sprintf("hotspot-%d", w.cfg.Lines)
}

func (w *hotspotWorkload) Setup(th tm.Thread) error {
	return th.Run(func(tx tm.Tx) error {
		// Align the block to a line boundary so the footprint is exactly
		// cfg.Lines lines (and stripes) for every thread.
		raw := tx.Alloc((w.cfg.Lines + 1) * mem.LineWords)
		w.base = (raw + mem.LineWords - 1) &^ (mem.LineWords - 1)
		return nil
	})
}

func (w *hotspotWorkload) NewOp(th tm.Thread, seed int64) func() error {
	base := w.base
	lines := w.cfg.Lines
	if w.cfg.Blind {
		var tick uint64
		return func() error {
			tick++
			v := uint64(seed) + tick
			return th.Run(func(tx tm.Tx) error {
				for j := 0; j < lines; j++ {
					tx.Store(base+mem.Addr(j*mem.LineWords), v)
				}
				return nil
			})
		}
	}
	return func() error {
		return th.Run(func(tx tm.Tx) error {
			for j := 0; j < lines; j++ {
				a := base + mem.Addr(j*mem.LineWords)
				tx.Store(a, tx.Load(a)+1)
			}
			return nil
		})
	}
}

// orderedWorkload drives the same mixed key-value operation profile as the
// RBTree microbenchmark over a different ordered structure (skip list or
// sorted list), for structure-comparison benchmarks.
type orderedWorkload struct {
	cfg     RBTreeConfig
	name    string
	create  func(tx tm.Tx) mem.Addr
	get     func(tx tm.Tx, head mem.Addr, k uint64)
	put     func(tx tm.Tx, head mem.Addr, k uint64)
	del     func(tx tm.Tx, head mem.Addr, k uint64)
	headPtr mem.Addr
}

// SkipListWorkload is the RBTree microbenchmark profile over a skip list.
func SkipListWorkload(cfg RBTreeConfig) WorkloadFactory {
	return func() Workload {
		return &orderedWorkload{
			cfg:    cfg,
			name:   "skiplist",
			create: func(tx tm.Tx) mem.Addr { return txds.NewSkipList(tx).Head() },
			get:    func(tx tm.Tx, h mem.Addr, k uint64) { txds.AttachSkipList(h).Get(tx, k) },
			put:    func(tx tm.Tx, h mem.Addr, k uint64) { txds.AttachSkipList(h).Put(tx, k, k) },
			del:    func(tx tm.Tx, h mem.Addr, k uint64) { txds.AttachSkipList(h).Delete(tx, k) },
		}
	}
}

// SortedListWorkload is the RBTree microbenchmark profile over a sorted
// linked list (use small sizes: traversals are O(n)).
func SortedListWorkload(cfg RBTreeConfig) WorkloadFactory {
	return func() Workload {
		return &orderedWorkload{
			cfg:    cfg,
			name:   "sortedlist",
			create: func(tx tm.Tx) mem.Addr { return txds.NewSortedList(tx).Head() },
			get:    func(tx tm.Tx, h mem.Addr, k uint64) { txds.AttachSortedList(h).Get(tx, k) },
			put:    func(tx tm.Tx, h mem.Addr, k uint64) { txds.AttachSortedList(h).Put(tx, k, k) },
			del:    func(tx tm.Tx, h mem.Addr, k uint64) { txds.AttachSortedList(h).Delete(tx, k) },
		}
	}
}

func (w *orderedWorkload) Name() string { return w.name }

func (w *orderedWorkload) Setup(th tm.Thread) error {
	if err := th.Run(func(tx tm.Tx) error {
		w.headPtr = w.create(tx)
		return nil
	}); err != nil {
		return err
	}
	const batch = 64
	for start := 0; start < w.cfg.Size; start += batch {
		end := start + batch
		if end > w.cfg.Size {
			end = w.cfg.Size
		}
		if err := th.Run(func(tx tm.Tx) error {
			for k := start; k < end; k++ {
				w.put(tx, w.headPtr, uint64(2*k))
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

func (w *orderedWorkload) NewOp(th tm.Thread, seed int64) func() error {
	rng := rand.New(rand.NewSource(seed))
	keyRange := uint64(2 * w.cfg.Size)
	return func() error {
		k := rng.Uint64() % keyRange
		r := rng.Float64()
		switch {
		case r < w.cfg.MutationRatio/2:
			return th.Run(func(tx tm.Tx) error { w.put(tx, w.headPtr, k); return nil })
		case r < w.cfg.MutationRatio:
			return th.Run(func(tx tm.Tx) error { w.del(tx, w.headPtr, k); return nil })
		default:
			return th.RunReadOnly(func(tx tm.Tx) error { w.get(tx, w.headPtr, k); return nil })
		}
	}
}

// appWorkload adapts the STAMP-style apps to the Workload interface.
type appWorkload struct {
	name  string
	setup func(th tm.Thread) error
	newOp func(th tm.Thread, seed int64) func() error
}

func (w *appWorkload) Name() string                                { return w.name }
func (w *appWorkload) Setup(th tm.Thread) error                    { return w.setup(th) }
func (w *appWorkload) NewOp(th tm.Thread, seed int64) func() error { return w.newOp(th, seed) }

// VacationLow is the paper's Vacation-Low column (Figure 5).
func VacationLow() WorkloadFactory {
	return func() Workload {
		app := vacation.New(vacation.Low())
		return &appWorkload{
			name:  app.Name(),
			setup: app.Setup,
			newOp: func(th tm.Thread, seed int64) func() error { return app.NewWorker(th, seed).Op },
		}
	}
}

// VacationHigh is the paper's Vacation-High column (Figure 6).
func VacationHigh() WorkloadFactory {
	return func() Workload {
		app := vacation.New(vacation.High())
		return &appWorkload{
			name:  app.Name(),
			setup: app.Setup,
			newOp: func(th tm.Thread, seed int64) func() error { return app.NewWorker(th, seed).Op },
		}
	}
}

// Intruder is the paper's Intruder column (Figure 5).
func Intruder() WorkloadFactory {
	return func() Workload {
		app := intruder.New(intruder.Default())
		return &appWorkload{
			name:  app.Name(),
			setup: app.Setup,
			newOp: func(th tm.Thread, seed int64) func() error { return app.NewWorker(th, seed).Op },
		}
	}
}

// Genome is the paper's Genome column (Figure 5).
func Genome() WorkloadFactory {
	return func() Workload {
		app := genome.New(genome.Default())
		return &appWorkload{
			name:  app.Name(),
			setup: app.Setup,
			newOp: func(th tm.Thread, seed int64) func() error { return app.NewWorker(th, seed).Op },
		}
	}
}

// SSCA2 is the paper's SSCA2 column (Figure 6).
func SSCA2() WorkloadFactory {
	return func() Workload {
		app := ssca2.New(ssca2.Default())
		return &appWorkload{
			name:  app.Name(),
			setup: app.Setup,
			newOp: func(th tm.Thread, seed int64) func() error { return app.NewWorker(th, seed).Op },
		}
	}
}

// Kmeans is noted in §3.6 as behaving like SSCA2.
func Kmeans() WorkloadFactory {
	return func() Workload {
		app := kmeans.New(kmeans.Default())
		return &appWorkload{
			name:  app.Name(),
			setup: app.Setup,
			newOp: func(th tm.Thread, seed int64) func() error { return app.NewWorker(th, seed).Op },
		}
	}
}

// Labyrinth is noted in §3.6 as behaving like SSCA2.
func Labyrinth() WorkloadFactory {
	return func() Workload {
		app := labyrinth.New(labyrinth.Default())
		return &appWorkload{
			name:  app.Name(),
			setup: app.Setup,
			newOp: func(th tm.Thread, seed int64) func() error { return app.NewWorker(th, seed).Op },
		}
	}
}

// Bayes is the STAMP app the paper omits "due to its inconsistent
// behavior" (§3.6); provided for completeness, outside the figure
// reproduction.
func Bayes() WorkloadFactory {
	return func() Workload {
		app := bayes.New(bayes.Default())
		return &appWorkload{
			name:  app.Name(),
			setup: app.Setup,
			newOp: func(th tm.Thread, seed int64) func() error { return app.NewWorker(th, seed).Op },
		}
	}
}

// Yada is the paper's Yada column (Figure 6).
func Yada() WorkloadFactory {
	return func() Workload {
		app := yada.New(yada.Default())
		return &appWorkload{
			name:  app.Name(),
			setup: app.Setup,
			newOp: func(th tm.Thread, seed int64) func() error { return app.NewWorker(th, seed).Op },
		}
	}
}
