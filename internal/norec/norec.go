// Package norec implements the NOrec STM of Dalessandro, Spear and Scott,
// in the two flavours the paper evaluates (§3.1, "NOrec"):
//
//   - Eager: encounter-time writes. A transaction spins on the global clock
//     at start, restarts whenever the clock moves during its read phase,
//     locks the clock at its first write, then writes directly to memory.
//     No read-set or write-set logging — the variant the paper found
//     fastest at its concurrency levels, and the slow path used by the
//     hybrid systems.
//   - Lazy: the classic NOrec. Value-logged read set with snapshot
//     extension, buffered write set, commit-time clock lock and write-back.
//
// The single piece of global metadata is the NOrec clock: LSB is the lock
// bit, committed writer transactions advance it by 2.
package norec

import (
	"runtime"

	"rhnorec/internal/mem"
	"rhnorec/internal/obs"
	"rhnorec/internal/tm"
)

// Variant selects the NOrec flavour.
type Variant int

const (
	// Eager is the encounter-time-write variant (paper default).
	Eager Variant = iota
	// Lazy is the classic deferred-write variant.
	Lazy
)

func (v Variant) String() string {
	if v == Lazy {
		return "norec-lazy"
	}
	return "norec"
}

// System is a NOrec STM over one shared memory.
type System struct {
	m       *mem.Memory
	rec     *tm.Reclaimer
	engine  *tm.Engine
	variant Variant
	clock   mem.Addr

	// ring, when non-nil (RetryPolicy.Combine with the Lazy variant), is the
	// flat-combining ring of the group-commit commit path: a lazy committer
	// that finds the clock locked at exactly its own snapshot base enqueues
	// its buffered write set here instead of spinning, and the lock holder
	// drains signature-disjoint entries under its one ticket window.
	ring *mem.CombineRing
}

// combineSigBits is the bloom width of the combining ring's signatures
// (compared only with each other, so the width is fixed at the maximum).
const combineSigBits = mem.MaxSigBits

// New creates a NOrec system of the given variant with the default
// contention policy.
func New(m *mem.Memory, variant Variant) *System {
	return NewWithPolicy(m, variant, tm.RetryPolicy{})
}

// NewWithPolicy creates a NOrec system with an explicit contention policy.
// Only the policy's software-restart behaviour applies (NOrec has no
// hardware fast path): the randomized kinds back off between restarts.
// There is no HTM device, so the engine seeds its jitter from its own
// deterministic counter.
func NewWithPolicy(m *mem.Memory, variant Variant, policy tm.RetryPolicy) *System {
	tc := m.NewThreadCache()
	s := &System{
		m:       m,
		rec:     tm.NewReclaimer(),
		engine:  tm.NewEngine(policy, nil),
		variant: variant,
		clock:   tc.Alloc(mem.LineWords),
	}
	if s.engine.Policy().Combine && variant == Lazy {
		s.ring = mem.NewCombineRing()
	}
	return s
}

// CombineRing returns the group-commit ring, or nil when combining is off —
// a diagnostic handle for tests and benchmark instrumentation.
func (s *System) CombineRing() *mem.CombineRing { return s.ring }

// Name implements tm.System.
func (s *System) Name() string { return s.variant.String() }

// Memory implements tm.System.
func (s *System) Memory() *mem.Memory { return s.m }

// NewThread implements tm.System.
func (s *System) NewThread() tm.Thread {
	t := &thread{
		sys:      s,
		base:     tm.NewThreadBase(s.m, s.rec),
		writeMap: make(map[mem.Addr]uint64, 32),
	}
	t.base.CM = s.engine.NewThreadPolicy(&t.base)
	return t
}

type readEntry struct {
	addr mem.Addr
	val  uint64
}

type thread struct {
	sys  *System
	base tm.ThreadBase
	ro   bool

	// txv is the transaction's clock snapshot; LSB set means this thread
	// holds the clock lock (eager variant only).
	txv uint64

	// Eager state.
	writeDetected bool
	undo          []mem.WriteEntry

	// Lazy state.
	readSet  []readEntry
	writeMap map[mem.Addr]uint64
	wOrder   []mem.Addr

	// Group-commit state (sys.ring != nil). combWrites is the flattened
	// write set offered to a holder (grow-once, recycled); drainMask records
	// ring slots claimed by this thread's own in-progress drain so every
	// abort path can resolve them rejected.
	combWrites []mem.WriteEntry
	drainMask  uint32
}

func (t *thread) Stats() *tm.Stats { return &t.base.St }
func (t *thread) Close()           { t.base.CloseBase() }

func (t *thread) Run(fn func(tm.Tx) error) error         { return t.run(fn, false) }
func (t *thread) RunReadOnly(fn func(tm.Tx) error) error { return t.run(fn, true) }

func (t *thread) run(fn func(tm.Tx) error, ro bool) error {
	if nested := t.base.Nested(); nested != nil {
		// Flat nesting: execute inline in the enclosing transaction.
		return fn(nested)
	}
	t.base.BeginTxn()
	defer t.base.EndTxn()
	t.ro = ro
	o := t.base.St.Obs
	attemptStart := o.Start()
	t.base.ObsEvent(obs.EventBegin, obs.PathSlow)
	restarts := 0
	for {
		swStart := o.Start()
		err, restarted := t.attempt(fn)
		o.RecordSince(obs.PhaseSoftware, swStart)
		if !restarted {
			if err == nil {
				t.base.ObsEvent(obs.EventCommit, obs.PathSlow)
			}
			o.RecordSince(obs.PhaseAttempt, attemptStart)
			return err
		}
		t.base.St.STMRestarts++
		restarts++
		t.base.RecordSTMRestart(restarts)
		t.base.CM.OnSTMRestart(restarts)
	}
}

// attempt runs one try of fn. It reports a restart instead of committing
// when the transaction was invalidated.
func (t *thread) attempt(fn func(tm.Tx) error) (err error, restarted bool) {
	defer func() {
		if r := recover(); r != nil {
			t.cleanupAfterAbort()
			if tm.IsRestart(r) {
				err, restarted = nil, true
				return
			}
			panic(r)
		}
	}()
	t.beginAttempt()
	if uerr := t.base.CallUser(fn, txView{t}); uerr != nil {
		t.cleanupAfterAbort()
		t.base.St.UserAborts++
		return uerr, false
	}
	wbStart := t.base.St.Obs.Start()
	t.commit()
	t.base.St.Obs.RecordSince(obs.PhaseWriteback, wbStart)
	t.base.CommitCleanup()
	t.base.St.Commits++
	t.base.St.SlowPathCommits++
	if t.ro {
		t.base.St.ReadOnlyCommits++
	}
	return nil, false
}

func (t *thread) beginAttempt() {
	t.writeDetected = false
	t.undo = t.undo[:0]
	t.readSet = t.readSet[:0]
	clear(t.writeMap)
	t.wOrder = t.wOrder[:0]
	// Spin until the clock is unlocked, then snapshot it.
	for {
		v := t.base.M.LoadPlain(t.sys.clock)
		if v&1 == 0 {
			t.txv = v
			return
		}
		runtime.Gosched()
	}
}

// cleanupAfterAbort restores memory and releases the clock lock if the
// eager variant aborted mid-write-phase (only possible via user error or an
// application panic; clock validation cannot fail while the lock is held).
func (t *thread) cleanupAfterAbort() {
	if t.drainMask != 0 {
		// A drain claimed ring entries but the publish never became visible:
		// resolve them rejected so their owners can restart.
		t.sys.ring.Resolve(t.drainMask, false)
		t.drainMask = 0
	}
	if t.writeDetected {
		for i := len(t.undo) - 1; i >= 0; i-- {
			t.base.M.StorePlain(t.undo[i].Addr, t.undo[i].Value)
		}
		// Memory is restored, so release without advancing the version:
		// no concurrent transaction can have observed the undone writes
		// (the clock was locked throughout).
		t.base.M.StorePlain(t.sys.clock, t.txv&^1)
		t.writeDetected = false
	}
	t.undo = t.undo[:0]
	t.base.AbortCleanup()
}

func (t *thread) commit() {
	m := t.base.M
	switch t.sys.variant {
	case Eager:
		if t.writeDetected {
			m.StorePlain(t.sys.clock, (t.txv&^1)+2)
			t.writeDetected = false
		}
	case Lazy:
		if len(t.wOrder) == 0 {
			return // read-only: nothing to publish, nothing to lock
		}
		for !m.CASPlain(t.sys.clock, t.txv, t.txv|1) {
			if t.sys.ring != nil && m.LoadPlain(t.sys.clock) == t.txv|1 {
				// A holder locked the clock at our snapshot base: our value-
				// validated read set is still exactly as valid as it was, so
				// offer the write set to the holder's group instead of
				// waiting.
				if t.tryEnqueue() {
					return
				}
				continue
			}
			t.txv = t.validate()
		}
		for _, a := range t.wOrder {
			m.StorePlain(a, t.writeMap[a])
		}
		if t.sys.ring != nil {
			t.drainGroup()
		}
		m.StorePlain(t.sys.clock, t.txv+2) // txv is even here
		if t.drainMask != 0 {
			// The group is visible (the clock released): resolve the claims
			// done.
			t.sys.ring.Resolve(t.drainMask, true)
			t.drainMask = 0
		}
	}
}

// drainGroup drains compatible queued commits into the holder's window: the
// group signature starts as the holder's own write footprint, and every
// admitted entry must be read-disjoint from it (see mem.CombineRing.Drain
// for the serial-order argument). Runs with the clock locked, so the
// published writes are invisible until the clock releases — readers
// value-validate only at even clocks.
func (t *thread) drainGroup() {
	m := t.base.M
	// Linger one scheduler beat so contending committers can reach their
	// commit, observe the locked clock, and enqueue — the combining batch
	// exists only if the holder gives it a moment to form.
	runtime.Gosched()
	var group mem.Signature
	for _, a := range t.wOrder {
		group.AddLine(mem.LineOf(a), combineSigBits)
	}
	t.drainMask = 0
	n := t.sys.ring.Drain(t.txv, &group, 1<<30, &t.drainMask, func(ws []mem.WriteEntry) {
		for _, w := range ws {
			m.StorePlain(w.Addr, w.Value)
		}
	})
	if n > 0 {
		t.base.St.CombineDrains++
		t.base.RecordCombine(obs.FilterCombineDrain)
	}
}

// tryEnqueue offers the buffered write set to the current holder's group and
// waits for a verdict. It returns true when the group committed us; false
// when the entry could not be placed or was retracted (the caller re-examines
// the clock). A rejected claim restarts the attempt.
func (t *thread) tryEnqueue() bool {
	m := t.base.M
	r := t.sys.ring
	var rsig, wsig mem.Signature
	for i := range t.readSet {
		rsig.AddLine(mem.LineOf(t.readSet[i].addr), combineSigBits)
	}
	t.combWrites = t.combWrites[:0]
	for _, a := range t.wOrder {
		t.combWrites = append(t.combWrites, mem.WriteEntry{Addr: a, Value: t.writeMap[a]})
		wsig.AddLine(mem.LineOf(a), combineSigBits)
	}
	slot := r.Enqueue(t.txv, t.combWrites, &rsig, &wsig)
	if slot < 0 {
		runtime.Gosched()
		return false
	}
	for {
		switch r.Poll(slot) {
		case mem.CombineDone:
			r.Release(slot)
			t.base.St.CombinedCommits++
			t.base.RecordCombine(obs.FilterCombinedCommit)
			return true
		case mem.CombineRejected:
			r.Release(slot)
			t.base.St.CombineRejects++
			t.base.RecordCombine(obs.FilterCombineReject)
			tm.Restart()
		}
		// The clock load paces the wait (a yield point under the
		// deterministic explorer) and detects a holder that finished
		// without claiming us.
		if m.LoadPlain(t.sys.clock) != t.txv|1 {
			if r.TryCancel(slot) {
				return false
			}
			// A holder claimed the entry between the clock moving and the
			// cancel: its verdict is imminent — keep polling.
		}
		runtime.Gosched()
	}
}

// validate re-checks the lazy read set by value and returns the even clock
// the set is valid at; it restarts the transaction on a mismatch.
func (t *thread) validate() uint64 {
	m := t.base.M
	for {
		time := m.LoadPlain(t.sys.clock)
		if time&1 == 1 {
			runtime.Gosched()
			continue
		}
		for _, r := range t.readSet {
			if m.LoadPlain(r.addr) != r.val {
				tm.Restart()
			}
		}
		if m.LoadPlain(t.sys.clock) == time {
			return time
		}
	}
}

type txView struct{ t *thread }

func (v txView) Load(a mem.Addr) uint64 {
	t := v.t
	t.base.InstrumentedAccess()
	m := t.base.M
	if t.sys.variant == Eager {
		val := m.LoadPlain(a)
		if m.LoadPlain(t.sys.clock) != t.txv {
			// Some writer committed (or locked the clock): without a read
			// set there is nothing to revalidate — restart (paper §3.1).
			tm.Restart()
		}
		return val
	}
	// Lazy: write set first, then a validated read with snapshot extension.
	if val, ok := t.writeMap[a]; ok {
		return val
	}
	val := m.LoadPlain(a)
	for m.LoadPlain(t.sys.clock) != t.txv {
		t.txv = t.validate()
		val = m.LoadPlain(a)
	}
	t.readSet = append(t.readSet, readEntry{a, val})
	return val
}

func (v txView) Store(a mem.Addr, val uint64) {
	t := v.t
	if t.ro {
		panic(tm.ErrStoreInReadOnly)
	}
	t.base.InstrumentedAccess()
	m := t.base.M
	if t.sys.variant == Eager {
		if !t.writeDetected {
			// First write: lock the clock at our snapshot (acquire_clock_lock
			// in Algorithm 2 terms). Failure means someone committed.
			if !m.CASPlain(t.sys.clock, t.txv, t.txv|1) {
				tm.Restart()
			}
			t.txv |= 1
			t.writeDetected = true
		}
		t.undo = append(t.undo, mem.WriteEntry{Addr: a, Value: m.LoadPlain(a)})
		m.StorePlain(a, val)
		return
	}
	if _, ok := t.writeMap[a]; !ok {
		t.wOrder = append(t.wOrder, a)
	}
	t.writeMap[a] = val
}

func (v txView) Alloc(n int) mem.Addr   { return v.t.base.TxAlloc(n) }
func (v txView) Free(a mem.Addr, n int) { v.t.base.TxFree(a, n) }
