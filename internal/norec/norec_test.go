package norec_test

import (
	"sync"
	"testing"

	"rhnorec/internal/mem"
	"rhnorec/internal/norec"
	"rhnorec/internal/tm"
	"rhnorec/internal/tmtest"
)

func TestConformanceEager(t *testing.T) {
	tmtest.RunConformance(t, func(m *mem.Memory) tm.System {
		return norec.New(m, norec.Eager)
	}, tmtest.Options{})
}

func TestConformanceLazy(t *testing.T) {
	tmtest.RunConformance(t, func(m *mem.Memory) tm.System {
		return norec.New(m, norec.Lazy)
	}, tmtest.Options{})
}

func TestNames(t *testing.T) {
	m := mem.New(1024)
	if got := norec.New(m, norec.Eager).Name(); got != "norec" {
		t.Errorf("eager Name = %q", got)
	}
	if got := norec.New(mem.New(1024), norec.Lazy).Name(); got != "norec-lazy" {
		t.Errorf("lazy Name = %q", got)
	}
}

// TestEagerRestartsOnConcurrentCommit: an eager reader that sees the clock
// move restarts — the defining behaviour of the no-read-set design.
func TestEagerRestartsOnConcurrentCommit(t *testing.T) {
	m := mem.New(1 << 16)
	sys := norec.New(m, norec.Eager)
	th := sys.NewThread()
	defer th.Close()
	var a mem.Addr
	if err := th.Run(func(tx tm.Tx) error { a = tx.Alloc(1); return nil }); err != nil {
		t.Fatal(err)
	}
	// A second thread commits a write between our loads.
	other := sys.NewThread()
	defer other.Close()
	reads := 0
	if err := th.Run(func(tx tm.Tx) error {
		reads++
		_ = tx.Load(a)
		if reads == 1 {
			if err := other.Run(func(tx2 tm.Tx) error {
				tx2.Store(a, 42)
				return nil
			}); err != nil {
				return err
			}
			_ = tx.Load(a) // must notice the clock moved and restart
			t.Error("read after concurrent commit did not restart")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if reads != 2 {
		t.Errorf("attempts = %d, want 2 (one restart)", reads)
	}
	if th.Stats().STMRestarts != 1 {
		t.Errorf("STMRestarts = %d, want 1", th.Stats().STMRestarts)
	}
}

// TestLazyExtendsInsteadOfRestarting: the lazy variant revalidates its read
// set and keeps going when a disjoint commit moves the clock.
func TestLazyExtendsInsteadOfRestarting(t *testing.T) {
	m := mem.New(1 << 16)
	sys := norec.New(m, norec.Lazy)
	th := sys.NewThread()
	defer th.Close()
	var a, b mem.Addr
	if err := th.Run(func(tx tm.Tx) error {
		a = tx.Alloc(mem.LineWords)
		b = tx.Alloc(mem.LineWords)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	other := sys.NewThread()
	defer other.Close()
	attempts := 0
	if err := th.Run(func(tx tm.Tx) error {
		attempts++
		_ = tx.Load(a)
		if attempts == 1 {
			if err := other.Run(func(tx2 tm.Tx) error {
				tx2.Store(b, 9) // disjoint from the read set
				return nil
			}); err != nil {
				return err
			}
		}
		_ = tx.Load(b) // extension must succeed; no restart
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1 (snapshot extension, not restart)", attempts)
	}
	if got := th.Stats().STMRestarts; got != 0 {
		t.Errorf("STMRestarts = %d, want 0", got)
	}
}

// TestLazyRestartsOnOverlappingCommit: extension fails when the moved
// location is in the read set.
func TestLazyRestartsOnOverlappingCommit(t *testing.T) {
	m := mem.New(1 << 16)
	sys := norec.New(m, norec.Lazy)
	th := sys.NewThread()
	defer th.Close()
	var a mem.Addr
	if err := th.Run(func(tx tm.Tx) error { a = tx.Alloc(1); return nil }); err != nil {
		t.Fatal(err)
	}
	other := sys.NewThread()
	defer other.Close()
	attempts := 0
	if err := th.Run(func(tx tm.Tx) error {
		attempts++
		v := tx.Load(a)
		if attempts == 1 {
			if v != 0 {
				t.Errorf("first attempt read %d, want 0", v)
			}
			if err := other.Run(func(tx2 tm.Tx) error {
				tx2.Store(a, 9)
				return nil
			}); err != nil {
				return err
			}
			_ = tx.Load(a + 0) // same word: validation must fail -> restart
			t.Error("overlapping commit did not restart the reader")
		} else if v != 9 {
			t.Errorf("second attempt read %d, want 9", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2", attempts)
	}
}

// TestEagerWriterCannotBeInvalidated: once the clock lock is held, the
// writer commits unconditionally (no other writer can commit concurrently).
func TestEagerWriterCommitsUnderReadLoad(t *testing.T) {
	m := mem.New(1 << 16)
	sys := norec.New(m, norec.Eager)
	setup := sys.NewThread()
	var a mem.Addr
	if err := setup.Run(func(tx tm.Tx) error { a = tx.Alloc(1); return nil }); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	const writers, per = 4, 200
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			for j := 0; j < per; j++ {
				if err := th.Run(func(tx tm.Tx) error {
					tx.Store(a, tx.Load(a)+1)
					return nil
				}); err != nil {
					t.Errorf("writer error: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := m.LoadPlain(a); got != writers*per {
		t.Errorf("counter = %d, want %d", got, writers*per)
	}
}

// TestStatsSlowPathCommits: pure STM commits are slow-path commits.
func TestStatsSlowPathCommits(t *testing.T) {
	m := mem.New(1 << 14)
	sys := norec.New(m, norec.Eager)
	th := sys.NewThread()
	defer th.Close()
	for i := 0; i < 5; i++ {
		if err := th.Run(func(tx tm.Tx) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if th.Stats().SlowPathCommits != 5 {
		t.Errorf("SlowPathCommits = %d, want 5", th.Stats().SlowPathCommits)
	}
	if th.Stats().FastPathCommits != 0 {
		t.Error("STM recorded fast-path commits")
	}
}
