// Package rbtree implements the paper's microbenchmark data structure
// (§3.5): a red-black tree with a put/get/delete key-value interface,
// derived from the java.util.TreeMap implementation, operating entirely on
// transactional memory through the tm.Tx interface. Every node access is a
// transactional load or store, so the tree works unchanged over every TM
// algorithm in this repository.
package rbtree

import (
	"fmt"

	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
)

// Node layout in transactional memory (6 words, one size class).
const (
	offKey = iota
	offVal
	offLeft
	offRight
	offParent
	offColor
	nodeWords
)

// Colors, following TreeMap's encoding (red = 0, black = 1).
const (
	red   = 0
	black = 1
)

// Header layout: the tree is reachable through two words.
const (
	offRoot = iota
	offSize
	headerWords
)

// Tree is a handle onto a red-black tree living in transactional memory.
// The handle itself is immutable and safely shared across threads; all
// mutable state lives behind the header address.
type Tree struct {
	head mem.Addr
}

// New allocates an empty tree inside the current transaction.
func New(tx tm.Tx) Tree {
	h := tx.Alloc(headerWords)
	return Tree{head: h}
}

// Attach wraps an existing tree header (e.g. one published through shared
// memory by another thread).
func Attach(head mem.Addr) Tree { return Tree{head: head} }

// Head returns the tree's header address for publication.
func (t Tree) Head() mem.Addr { return t.head }

// Size returns the number of keys in the tree.
func (t Tree) Size(tx tm.Tx) uint64 { return tx.Load(t.head + offSize) }

func (t Tree) root(tx tm.Tx) mem.Addr { return mem.Addr(tx.Load(t.head + offRoot)) }

func (t Tree) setRoot(tx tm.Tx, n mem.Addr) { tx.Store(t.head+offRoot, uint64(n)) }

// nil-safe accessors, mirroring TreeMap's leftOf/rightOf/parentOf/colorOf.

func leftOf(tx tm.Tx, n mem.Addr) mem.Addr {
	if n == mem.Nil {
		return mem.Nil
	}
	return mem.Addr(tx.Load(n + offLeft))
}

func rightOf(tx tm.Tx, n mem.Addr) mem.Addr {
	if n == mem.Nil {
		return mem.Nil
	}
	return mem.Addr(tx.Load(n + offRight))
}

func parentOf(tx tm.Tx, n mem.Addr) mem.Addr {
	if n == mem.Nil {
		return mem.Nil
	}
	return mem.Addr(tx.Load(n + offParent))
}

func colorOf(tx tm.Tx, n mem.Addr) uint64 {
	if n == mem.Nil {
		return black // nil leaves are black
	}
	return tx.Load(n + offColor)
}

func setColor(tx tm.Tx, n mem.Addr, c uint64) {
	if n != mem.Nil {
		tx.Store(n+offColor, c)
	}
}

// Get returns the value stored under key.
func (t Tree) Get(tx tm.Tx, key uint64) (uint64, bool) {
	n := t.root(tx)
	for n != mem.Nil {
		k := tx.Load(n + offKey)
		switch {
		case key < k:
			n = mem.Addr(tx.Load(n + offLeft))
		case key > k:
			n = mem.Addr(tx.Load(n + offRight))
		default:
			return tx.Load(n + offVal), true
		}
	}
	return 0, false
}

// Contains reports whether key is present.
func (t Tree) Contains(tx tm.Tx, key uint64) bool {
	_, ok := t.Get(tx, key)
	return ok
}

// Put inserts or replaces the value under key, returning the previous value
// if one was replaced.
func (t Tree) Put(tx tm.Tx, key, value uint64) (prev uint64, replaced bool) {
	n := t.root(tx)
	if n == mem.Nil {
		fresh := t.newNode(tx, key, value, mem.Nil)
		t.setRoot(tx, fresh)
		tx.Store(t.head+offSize, t.Size(tx)+1)
		return 0, false
	}
	var parent mem.Addr
	var wentLeft bool
	for n != mem.Nil {
		parent = n
		k := tx.Load(n + offKey)
		switch {
		case key < k:
			n = mem.Addr(tx.Load(n + offLeft))
			wentLeft = true
		case key > k:
			n = mem.Addr(tx.Load(n + offRight))
			wentLeft = false
		default:
			old := tx.Load(n + offVal)
			tx.Store(n+offVal, value)
			return old, true
		}
	}
	fresh := t.newNode(tx, key, value, parent)
	if wentLeft {
		tx.Store(parent+offLeft, uint64(fresh))
	} else {
		tx.Store(parent+offRight, uint64(fresh))
	}
	t.fixAfterInsertion(tx, fresh)
	tx.Store(t.head+offSize, t.Size(tx)+1)
	return 0, false
}

func (t Tree) newNode(tx tm.Tx, key, value uint64, parent mem.Addr) mem.Addr {
	n := tx.Alloc(nodeWords)
	tx.Store(n+offKey, key)
	tx.Store(n+offVal, value)
	tx.Store(n+offParent, uint64(parent))
	tx.Store(n+offColor, black) // TreeMap creates entries black; fixup recolors
	return n
}

func (t Tree) rotateLeft(tx tm.Tx, p mem.Addr) {
	if p == mem.Nil {
		return
	}
	r := mem.Addr(tx.Load(p + offRight))
	rl := mem.Addr(tx.Load(r + offLeft))
	tx.Store(p+offRight, uint64(rl))
	if rl != mem.Nil {
		tx.Store(rl+offParent, uint64(p))
	}
	pp := mem.Addr(tx.Load(p + offParent))
	tx.Store(r+offParent, uint64(pp))
	if pp == mem.Nil {
		t.setRoot(tx, r)
	} else if mem.Addr(tx.Load(pp+offLeft)) == p {
		tx.Store(pp+offLeft, uint64(r))
	} else {
		tx.Store(pp+offRight, uint64(r))
	}
	tx.Store(r+offLeft, uint64(p))
	tx.Store(p+offParent, uint64(r))
}

func (t Tree) rotateRight(tx tm.Tx, p mem.Addr) {
	if p == mem.Nil {
		return
	}
	l := mem.Addr(tx.Load(p + offLeft))
	lr := mem.Addr(tx.Load(l + offRight))
	tx.Store(p+offLeft, uint64(lr))
	if lr != mem.Nil {
		tx.Store(lr+offParent, uint64(p))
	}
	pp := mem.Addr(tx.Load(p + offParent))
	tx.Store(l+offParent, uint64(pp))
	if pp == mem.Nil {
		t.setRoot(tx, l)
	} else if mem.Addr(tx.Load(pp+offRight)) == p {
		tx.Store(pp+offRight, uint64(l))
	} else {
		tx.Store(pp+offLeft, uint64(l))
	}
	tx.Store(l+offRight, uint64(p))
	tx.Store(p+offParent, uint64(l))
}

func (t Tree) fixAfterInsertion(tx tm.Tx, x mem.Addr) {
	tx.Store(x+offColor, red)
	for x != mem.Nil && x != t.root(tx) && colorOf(tx, parentOf(tx, x)) == red {
		if parentOf(tx, x) == leftOf(tx, parentOf(tx, parentOf(tx, x))) {
			y := rightOf(tx, parentOf(tx, parentOf(tx, x)))
			if colorOf(tx, y) == red {
				setColor(tx, parentOf(tx, x), black)
				setColor(tx, y, black)
				setColor(tx, parentOf(tx, parentOf(tx, x)), red)
				x = parentOf(tx, parentOf(tx, x))
			} else {
				if x == rightOf(tx, parentOf(tx, x)) {
					x = parentOf(tx, x)
					t.rotateLeft(tx, x)
				}
				setColor(tx, parentOf(tx, x), black)
				setColor(tx, parentOf(tx, parentOf(tx, x)), red)
				t.rotateRight(tx, parentOf(tx, parentOf(tx, x)))
			}
		} else {
			y := leftOf(tx, parentOf(tx, parentOf(tx, x)))
			if colorOf(tx, y) == red {
				setColor(tx, parentOf(tx, x), black)
				setColor(tx, y, black)
				setColor(tx, parentOf(tx, parentOf(tx, x)), red)
				x = parentOf(tx, parentOf(tx, x))
			} else {
				if x == leftOf(tx, parentOf(tx, x)) {
					x = parentOf(tx, x)
					t.rotateRight(tx, x)
				}
				setColor(tx, parentOf(tx, x), black)
				setColor(tx, parentOf(tx, parentOf(tx, x)), red)
				t.rotateLeft(tx, parentOf(tx, parentOf(tx, x)))
			}
		}
	}
	setColor(tx, t.root(tx), black)
}

// successor returns the in-order successor of n (TreeMap's successor()).
func successor(tx tm.Tx, n mem.Addr) mem.Addr {
	if n == mem.Nil {
		return mem.Nil
	}
	if r := rightOf(tx, n); r != mem.Nil {
		p := r
		for leftOf(tx, p) != mem.Nil {
			p = leftOf(tx, p)
		}
		return p
	}
	p := parentOf(tx, n)
	ch := n
	for p != mem.Nil && ch == rightOf(tx, p) {
		ch = p
		p = parentOf(tx, p)
	}
	return p
}

// Delete removes key, returning its value if it was present. The node's
// memory is released through the transaction (reclaimed after commit plus a
// grace period).
func (t Tree) Delete(tx tm.Tx, key uint64) (uint64, bool) {
	p := t.root(tx)
	for p != mem.Nil {
		k := tx.Load(p + offKey)
		switch {
		case key < k:
			p = mem.Addr(tx.Load(p + offLeft))
		case key > k:
			p = mem.Addr(tx.Load(p + offRight))
		default:
			val := tx.Load(p + offVal)
			t.deleteEntry(tx, p)
			tx.Store(t.head+offSize, t.Size(tx)-1)
			return val, true
		}
	}
	return 0, false
}

// deleteEntry is TreeMap's deleteEntry: swap with successor when the node
// has two children, splice out, and rebalance.
func (t Tree) deleteEntry(tx tm.Tx, p mem.Addr) {
	if leftOf(tx, p) != mem.Nil && rightOf(tx, p) != mem.Nil {
		s := successor(tx, p)
		tx.Store(p+offKey, tx.Load(s+offKey))
		tx.Store(p+offVal, tx.Load(s+offVal))
		p = s
	}
	replacement := leftOf(tx, p)
	if replacement == mem.Nil {
		replacement = rightOf(tx, p)
	}
	if replacement != mem.Nil {
		pp := parentOf(tx, p)
		tx.Store(replacement+offParent, uint64(pp))
		if pp == mem.Nil {
			t.setRoot(tx, replacement)
		} else if p == leftOf(tx, pp) {
			tx.Store(pp+offLeft, uint64(replacement))
		} else {
			tx.Store(pp+offRight, uint64(replacement))
		}
		tx.Store(p+offLeft, 0)
		tx.Store(p+offRight, 0)
		tx.Store(p+offParent, 0)
		if colorOf(tx, p) == black {
			t.fixAfterDeletion(tx, replacement)
		}
	} else if parentOf(tx, p) == mem.Nil {
		t.setRoot(tx, mem.Nil)
	} else {
		if colorOf(tx, p) == black {
			t.fixAfterDeletion(tx, p)
		}
		pp := parentOf(tx, p)
		if pp != mem.Nil {
			if p == leftOf(tx, pp) {
				tx.Store(pp+offLeft, 0)
			} else if p == rightOf(tx, pp) {
				tx.Store(pp+offRight, 0)
			}
			tx.Store(p+offParent, 0)
		}
	}
	tx.Free(p, nodeWords)
}

func (t Tree) fixAfterDeletion(tx tm.Tx, x mem.Addr) {
	for x != t.root(tx) && colorOf(tx, x) == black {
		if x == leftOf(tx, parentOf(tx, x)) {
			sib := rightOf(tx, parentOf(tx, x))
			if colorOf(tx, sib) == red {
				setColor(tx, sib, black)
				setColor(tx, parentOf(tx, x), red)
				t.rotateLeft(tx, parentOf(tx, x))
				sib = rightOf(tx, parentOf(tx, x))
			}
			if colorOf(tx, leftOf(tx, sib)) == black && colorOf(tx, rightOf(tx, sib)) == black {
				setColor(tx, sib, red)
				x = parentOf(tx, x)
			} else {
				if colorOf(tx, rightOf(tx, sib)) == black {
					setColor(tx, leftOf(tx, sib), black)
					setColor(tx, sib, red)
					t.rotateRight(tx, sib)
					sib = rightOf(tx, parentOf(tx, x))
				}
				setColor(tx, sib, colorOf(tx, parentOf(tx, x)))
				setColor(tx, parentOf(tx, x), black)
				setColor(tx, rightOf(tx, sib), black)
				t.rotateLeft(tx, parentOf(tx, x))
				x = t.root(tx)
			}
		} else {
			sib := leftOf(tx, parentOf(tx, x))
			if colorOf(tx, sib) == red {
				setColor(tx, sib, black)
				setColor(tx, parentOf(tx, x), red)
				t.rotateRight(tx, parentOf(tx, x))
				sib = leftOf(tx, parentOf(tx, x))
			}
			if colorOf(tx, rightOf(tx, sib)) == black && colorOf(tx, leftOf(tx, sib)) == black {
				setColor(tx, sib, red)
				x = parentOf(tx, x)
			} else {
				if colorOf(tx, leftOf(tx, sib)) == black {
					setColor(tx, rightOf(tx, sib), black)
					setColor(tx, sib, red)
					t.rotateLeft(tx, sib)
					sib = leftOf(tx, parentOf(tx, x))
				}
				setColor(tx, sib, colorOf(tx, parentOf(tx, x)))
				setColor(tx, parentOf(tx, x), black)
				setColor(tx, leftOf(tx, sib), black)
				t.rotateRight(tx, parentOf(tx, x))
				x = t.root(tx)
			}
		}
	}
	setColor(tx, x, black)
}

// Min returns the smallest key and its value.
func (t Tree) Min(tx tm.Tx) (key, value uint64, ok bool) {
	n := t.root(tx)
	if n == mem.Nil {
		return 0, 0, false
	}
	for leftOf(tx, n) != mem.Nil {
		n = leftOf(tx, n)
	}
	return tx.Load(n + offKey), tx.Load(n + offVal), true
}

// Max returns the largest key and its value.
func (t Tree) Max(tx tm.Tx) (key, value uint64, ok bool) {
	n := t.root(tx)
	if n == mem.Nil {
		return 0, 0, false
	}
	for rightOf(tx, n) != mem.Nil {
		n = rightOf(tx, n)
	}
	return tx.Load(n + offKey), tx.Load(n + offVal), true
}

// Range visits every entry with lo <= key <= hi in ascending order; visit
// returning false stops the walk early.
func (t Tree) Range(tx tm.Tx, lo, hi uint64, visit func(key, value uint64) bool) {
	var walk func(n mem.Addr) bool
	walk = func(n mem.Addr) bool {
		if n == mem.Nil {
			return true
		}
		k := tx.Load(n + offKey)
		if k > lo {
			if !walk(leftOf(tx, n)) {
				return false
			}
		}
		if k >= lo && k <= hi {
			if !visit(k, tx.Load(n+offVal)) {
				return false
			}
		}
		if k < hi {
			return walk(rightOf(tx, n))
		}
		return true
	}
	walk(t.root(tx))
}

// Keys returns the keys in ascending order. Intended for tests and
// examples; it reads the whole tree inside the transaction.
func (t Tree) Keys(tx tm.Tx) []uint64 {
	var out []uint64
	var walk func(n mem.Addr)
	walk = func(n mem.Addr) {
		if n == mem.Nil {
			return
		}
		walk(mem.Addr(tx.Load(n + offLeft)))
		out = append(out, tx.Load(n+offKey))
		walk(mem.Addr(tx.Load(n + offRight)))
	}
	walk(t.root(tx))
	return out
}

// CheckInvariants verifies the binary-search-tree ordering, the red-black
// coloring rules, parent-pointer integrity and the size counter. It returns
// the first violation found.
func (t Tree) CheckInvariants(tx tm.Tx) error {
	root := t.root(tx)
	if root == mem.Nil {
		if s := t.Size(tx); s != 0 {
			return fmt.Errorf("rbtree: empty tree with size %d", s)
		}
		return nil
	}
	if colorOf(tx, root) != black {
		return fmt.Errorf("rbtree: root is red")
	}
	count := uint64(0)
	var blackHeight int
	var check func(n mem.Addr, min, max uint64, haveMin, haveMax bool, blacks int) error
	check = func(n mem.Addr, min, max uint64, haveMin, haveMax bool, blacks int) error {
		if n == mem.Nil {
			if blackHeight == 0 {
				blackHeight = blacks
			} else if blacks != blackHeight {
				return fmt.Errorf("rbtree: black-height mismatch (%d vs %d)", blacks, blackHeight)
			}
			return nil
		}
		count++
		k := tx.Load(n + offKey)
		if haveMin && k <= min {
			return fmt.Errorf("rbtree: key %d violates BST order (<= %d)", k, min)
		}
		if haveMax && k >= max {
			return fmt.Errorf("rbtree: key %d violates BST order (>= %d)", k, max)
		}
		c := colorOf(tx, n)
		if c != red && c != black {
			return fmt.Errorf("rbtree: node %d has invalid color %d", n, c)
		}
		if c == red {
			if colorOf(tx, leftOf(tx, n)) == red || colorOf(tx, rightOf(tx, n)) == red {
				return fmt.Errorf("rbtree: red node %d has a red child", n)
			}
		} else {
			blacks++
		}
		if l := leftOf(tx, n); l != mem.Nil && parentOf(tx, l) != n {
			return fmt.Errorf("rbtree: left child of %d has wrong parent", n)
		}
		if r := rightOf(tx, n); r != mem.Nil && parentOf(tx, r) != n {
			return fmt.Errorf("rbtree: right child of %d has wrong parent", n)
		}
		if err := check(leftOf(tx, n), min, k, haveMin, true, blacks); err != nil {
			return err
		}
		return check(rightOf(tx, n), k, max, true, haveMax, blacks)
	}
	if err := check(root, 0, 0, false, false, 0); err != nil {
		return err
	}
	if s := t.Size(tx); s != count {
		return fmt.Errorf("rbtree: size counter %d but %d nodes reachable", s, count)
	}
	return nil
}
