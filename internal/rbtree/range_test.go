package rbtree_test

import (
	"math/rand"
	"testing"

	"rhnorec/internal/mem"
	"rhnorec/internal/rbtree"
	"rhnorec/internal/serial"
	"rhnorec/internal/tm"
)

func TestMinMaxRange(t *testing.T) {
	sys := serial.New(mem.New(1 << 20))
	th := sys.NewThread()
	defer th.Close()
	if err := th.Run(func(tx tm.Tx) error {
		tree := rbtree.New(tx)
		if _, _, ok := tree.Min(tx); ok {
			t.Error("Min on empty tree returned ok")
		}
		if _, _, ok := tree.Max(tx); ok {
			t.Error("Max on empty tree returned ok")
		}
		for _, k := range []uint64{50, 10, 90, 30, 70} {
			tree.Put(tx, k, k*2)
		}
		if k, v, ok := tree.Min(tx); !ok || k != 10 || v != 20 {
			t.Errorf("Min = %d,%d,%v", k, v, ok)
		}
		if k, v, ok := tree.Max(tx); !ok || k != 90 || v != 180 {
			t.Errorf("Max = %d,%d,%v", k, v, ok)
		}
		var got []uint64
		tree.Range(tx, 20, 80, func(k, v uint64) bool {
			got = append(got, k)
			return true
		})
		want := []uint64{30, 50, 70}
		if len(got) != len(want) {
			t.Fatalf("Range keys = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Range keys = %v, want %v", got, want)
			}
		}
		// Early stop.
		count := 0
		tree.Range(tx, 0, 100, func(uint64, uint64) bool {
			count++
			return count < 2
		})
		if count != 2 {
			t.Errorf("early-stop Range visited %d, want 2", count)
		}
		// Inclusive bounds.
		var incl []uint64
		tree.Range(tx, 10, 90, func(k, _ uint64) bool { incl = append(incl, k); return true })
		if len(incl) != 5 {
			t.Errorf("inclusive Range visited %d keys, want 5", len(incl))
		}
		// Empty window.
		tree.Range(tx, 55, 65, func(k, _ uint64) bool {
			t.Errorf("unexpected key %d in empty window", k)
			return true
		})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeMatchesKeysRandomized(t *testing.T) {
	sys := serial.New(mem.New(1 << 21))
	th := sys.NewThread()
	defer th.Close()
	rng := rand.New(rand.NewSource(5))
	if err := th.Run(func(tx tm.Tx) error {
		tree := rbtree.New(tx)
		for i := 0; i < 300; i++ {
			tree.Put(tx, uint64(rng.Intn(1000)), uint64(i))
		}
		keys := tree.Keys(tx)
		for trial := 0; trial < 20; trial++ {
			lo := uint64(rng.Intn(1000))
			hi := lo + uint64(rng.Intn(300))
			var got []uint64
			tree.Range(tx, lo, hi, func(k, _ uint64) bool { got = append(got, k); return true })
			var want []uint64
			for _, k := range keys {
				if k >= lo && k <= hi {
					want = append(want, k)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d: Range [%d,%d] = %d keys, want %d", trial, lo, hi, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d: Range order mismatch", trial)
				}
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
