package rbtree_test

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"rhnorec/internal/core"
	"rhnorec/internal/htm"
	"rhnorec/internal/hynorec"
	"rhnorec/internal/lockelision"
	"rhnorec/internal/mem"
	"rhnorec/internal/norec"
	"rhnorec/internal/rbtree"
	"rhnorec/internal/serial"
	"rhnorec/internal/tl2"
	"rhnorec/internal/tm"
)

// newTree builds a serial-TM tree for the single-threaded semantic tests.
func newTree(t *testing.T) (tm.System, tm.Thread, rbtree.Tree) {
	t.Helper()
	m := mem.New(1 << 22)
	sys := serial.New(m)
	th := sys.NewThread()
	var tree rbtree.Tree
	if err := th.Run(func(tx tm.Tx) error {
		tree = rbtree.New(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return sys, th, tree
}

func TestEmptyTree(t *testing.T) {
	_, th, tree := newTree(t)
	defer th.Close()
	if err := th.Run(func(tx tm.Tx) error {
		if _, ok := tree.Get(tx, 5); ok {
			t.Error("Get on empty tree returned ok")
		}
		if tree.Size(tx) != 0 {
			t.Error("empty tree has nonzero size")
		}
		if _, ok := tree.Delete(tx, 5); ok {
			t.Error("Delete on empty tree returned ok")
		}
		return tree.CheckInvariants(tx)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetDelete(t *testing.T) {
	_, th, tree := newTree(t)
	defer th.Close()
	if err := th.Run(func(tx tm.Tx) error {
		for k := uint64(1); k <= 100; k++ {
			if _, replaced := tree.Put(tx, k*7%101, k); replaced {
				t.Errorf("fresh key %d reported replaced", k*7%101)
			}
		}
		if got := tree.Size(tx); got != 100 {
			t.Errorf("size = %d, want 100", got)
		}
		if err := tree.CheckInvariants(tx); err != nil {
			return err
		}
		for k := uint64(1); k <= 100; k++ {
			v, ok := tree.Get(tx, k*7%101)
			if !ok || v != k {
				t.Errorf("Get(%d) = %d,%v want %d", k*7%101, v, ok, k)
			}
		}
		// Replace.
		if prev, replaced := tree.Put(tx, 7, 999); !replaced || prev != 1 {
			t.Errorf("replace returned %d,%v", prev, replaced)
		}
		// Delete half.
		for k := uint64(1); k <= 50; k++ {
			if _, ok := tree.Delete(tx, k*7%101); !ok {
				t.Errorf("Delete(%d) missed", k*7%101)
			}
		}
		if got := tree.Size(tx); got != 50 {
			t.Errorf("size = %d, want 50", got)
		}
		return tree.CheckInvariants(tx)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestKeysSorted(t *testing.T) {
	_, th, tree := newTree(t)
	defer th.Close()
	if err := th.Run(func(tx tm.Tx) error {
		for _, k := range []uint64{5, 3, 9, 1, 7, 2, 8, 6, 4} {
			tree.Put(tx, k, k*10)
		}
		keys := tree.Keys(tx)
		if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
			t.Errorf("Keys not sorted: %v", keys)
		}
		if len(keys) != 9 {
			t.Errorf("len(Keys) = %d, want 9", len(keys))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialVsMap runs a long random op sequence against a Go map
// oracle, checking invariants as it goes.
func TestDifferentialVsMap(t *testing.T) {
	_, th, tree := newTree(t)
	defer th.Close()
	oracle := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(42))
	const keyRange = 200
	for i := 0; i < 4000; i++ {
		k := uint64(rng.Intn(keyRange))
		v := rng.Uint64()
		op := rng.Intn(3)
		if err := th.Run(func(tx tm.Tx) error {
			switch op {
			case 0: // put
				prev, replaced := tree.Put(tx, k, v)
				want, ok := oracle[k]
				if replaced != ok || (ok && prev != want) {
					t.Fatalf("iter %d: Put(%d) = %d,%v oracle %d,%v", i, k, prev, replaced, want, ok)
				}
			case 1: // get
				got, ok := tree.Get(tx, k)
				want, wok := oracle[k]
				if ok != wok || (ok && got != want) {
					t.Fatalf("iter %d: Get(%d) = %d,%v oracle %d,%v", i, k, got, ok, want, wok)
				}
			case 2: // delete
				got, ok := tree.Delete(tx, k)
				want, wok := oracle[k]
				if ok != wok || (ok && got != want) {
					t.Fatalf("iter %d: Delete(%d) = %d,%v oracle %d,%v", i, k, got, ok, want, wok)
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		switch op {
		case 0:
			oracle[k] = v
		case 2:
			delete(oracle, k)
		}
		if i%250 == 0 {
			if err := th.Run(func(tx tm.Tx) error { return tree.CheckInvariants(tx) }); err != nil {
				t.Fatalf("iter %d: %v", i, err)
			}
		}
	}
	if err := th.Run(func(tx tm.Tx) error {
		if got, want := tree.Size(tx), uint64(len(oracle)); got != want {
			t.Errorf("final size = %d, oracle %d", got, want)
		}
		return tree.CheckInvariants(tx)
	}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInvariants: property — any insertion sequence yields a valid
// red-black tree containing exactly its distinct keys.
func TestQuickInvariants(t *testing.T) {
	f := func(keys []uint16) bool {
		m := mem.New(1 << 22)
		sys := serial.New(m)
		th := sys.NewThread()
		defer th.Close()
		ok := true
		err := th.Run(func(tx tm.Tx) error {
			tree := rbtree.New(tx)
			distinct := make(map[uint64]bool)
			for _, k := range keys {
				tree.Put(tx, uint64(k), 1)
				distinct[uint64(k)] = true
			}
			if e := tree.CheckInvariants(tx); e != nil {
				ok = false
			}
			if tree.Size(tx) != uint64(len(distinct)) {
				ok = false
			}
			// Delete every other key and recheck.
			i := 0
			for k := range distinct {
				if i%2 == 0 {
					if _, found := tree.Delete(tx, k); !found {
						ok = false
					}
				}
				i++
			}
			if e := tree.CheckInvariants(tx); e != nil {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// concurrentTreeStress drives the tree through a TM system with mixed
// operations, then validates invariants and key accounting.
func concurrentTreeStress(t *testing.T, sys tm.System, threads, ops int) {
	t.Helper()
	setup := sys.NewThread()
	var tree rbtree.Tree
	if err := setup.Run(func(tx tm.Tx) error {
		tree = rbtree.New(tx)
		for k := uint64(0); k < 64; k++ {
			tree.Put(tx, k*2, k)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < ops; j++ {
				k := uint64(rng.Intn(128))
				var err error
				switch rng.Intn(10) {
				case 0, 1: // 20% put
					err = th.Run(func(tx tm.Tx) error {
						tree.Put(tx, k, uint64(j))
						return nil
					})
				case 2, 3: // 20% delete
					err = th.Run(func(tx tm.Tx) error {
						tree.Delete(tx, k)
						return nil
					})
				default: // 60% get
					err = th.RunReadOnly(func(tx tm.Tx) error {
						tree.Get(tx, k)
						return nil
					})
				}
				if err != nil {
					t.Errorf("op error: %v", err)
					return
				}
			}
		}(int64(i + 1))
	}
	wg.Wait()
	check := sys.NewThread()
	defer check.Close()
	if err := check.Run(func(tx tm.Tx) error { return tree.CheckInvariants(tx) }); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentStressAllSystems(t *testing.T) {
	mk := map[string]func(m *mem.Memory) tm.System{
		"serial": func(m *mem.Memory) tm.System { return serial.New(m) },
		"lock-elision": func(m *mem.Memory) tm.System {
			d := htm.NewDevice(m, htm.Config{})
			d.SetActiveThreads(4)
			return lockelision.New(m, d, tm.RetryPolicy{})
		},
		"norec":      func(m *mem.Memory) tm.System { return norec.New(m, norec.Eager) },
		"norec-lazy": func(m *mem.Memory) tm.System { return norec.New(m, norec.Lazy) },
		"tl2":        func(m *mem.Memory) tm.System { return tl2.New(m, 0) },
		"hy-norec": func(m *mem.Memory) tm.System {
			d := htm.NewDevice(m, htm.Config{})
			d.SetActiveThreads(4)
			return hynorec.New(m, d, tm.RetryPolicy{})
		},
		"rh-norec": func(m *mem.Memory) tm.System {
			d := htm.NewDevice(m, htm.Config{})
			d.SetActiveThreads(4)
			return core.New(m, d, tm.RetryPolicy{})
		},
		"rh-norec-tiny-htm": func(m *mem.Memory) tm.System {
			d := htm.NewDevice(m, htm.Config{ReadCapacityLines: 16, WriteCapacityLines: 8})
			d.SetActiveThreads(4)
			return core.New(m, d, tm.RetryPolicy{})
		},
	}
	for name, f := range mk {
		t.Run(name, func(t *testing.T) {
			concurrentTreeStress(t, f(mem.New(1<<22)), 4, 250)
		})
	}
}
