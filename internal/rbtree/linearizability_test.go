package rbtree_test

import (
	"math/rand"
	"sync"
	"testing"

	"rhnorec/internal/core"
	"rhnorec/internal/htm"
	"rhnorec/internal/hynorec"
	"rhnorec/internal/linearize"
	"rhnorec/internal/mem"
	"rhnorec/internal/rbtree"
	"rhnorec/internal/tm"
)

// TestLinearizability records a concurrent history of tree operations and
// verifies it against sequential map semantics with the linearizability
// checker — a stronger statement than invariant checking: not only does the
// tree stay structurally sound, every individual result is explainable by
// a single total order consistent with real time.
func TestLinearizability(t *testing.T) {
	configs := map[string]func(m *mem.Memory) tm.System{
		"rh-norec": func(m *mem.Memory) tm.System {
			d := htm.NewDevice(m, htm.Config{})
			d.SetActiveThreads(4)
			return core.New(m, d, tm.RetryPolicy{})
		},
		"rh-norec-tiny-htm": func(m *mem.Memory) tm.System {
			d := htm.NewDevice(m, htm.Config{ReadCapacityLines: 8, WriteCapacityLines: 4, SpuriousAbortProb: 0.01})
			d.SetActiveThreads(4)
			return core.New(m, d, tm.RetryPolicy{})
		},
		"hy-norec": func(m *mem.Memory) tm.System {
			d := htm.NewDevice(m, htm.Config{})
			d.SetActiveThreads(4)
			return hynorec.New(m, d, tm.RetryPolicy{})
		},
	}
	for name, factory := range configs {
		t.Run(name, func(t *testing.T) {
			sys := factory(mem.New(1 << 21))
			setup := sys.NewThread()
			var tree rbtree.Tree
			if err := setup.Run(func(tx tm.Tx) error {
				tree = rbtree.New(tx)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			setup.Close()
			rec := linearize.NewRecorder()
			// keys is sized so per-key subhistories stay safely under the
			// checker's 64-op partition cap (mean 40, ~4σ headroom).
			const threads, ops, keys = 4, 100, 10
			var wg sync.WaitGroup
			for i := 0; i < threads; i++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					th := sys.NewThread()
					defer th.Close()
					rng := rand.New(rand.NewSource(seed))
					for j := 0; j < ops; j++ {
						key := uint64(rng.Intn(keys))
						switch rng.Intn(3) {
						case 0:
							val := rng.Uint64() >> 1
							rec.Do(linearize.Put, key, val, func() (uint64, bool) {
								var prev uint64
								var replaced bool
								if err := th.Run(func(tx tm.Tx) error {
									prev, replaced = tree.Put(tx, key, val)
									return nil
								}); err != nil {
									t.Errorf("put: %v", err)
								}
								return prev, replaced
							})
						case 1:
							rec.Do(linearize.Get, key, 0, func() (uint64, bool) {
								var v uint64
								var ok bool
								if err := th.RunReadOnly(func(tx tm.Tx) error {
									v, ok = tree.Get(tx, key)
									return nil
								}); err != nil {
									t.Errorf("get: %v", err)
								}
								return v, ok
							})
						case 2:
							rec.Do(linearize.Delete, key, 0, func() (uint64, bool) {
								var v uint64
								var ok bool
								if err := th.Run(func(tx tm.Tx) error {
									v, ok = tree.Delete(tx, key)
									return nil
								}); err != nil {
									t.Errorf("delete: %v", err)
								}
								return v, ok
							})
						}
					}
				}(int64(i + 1))
			}
			wg.Wait()
			h := rec.History()
			res, err := linearize.CheckErr(h)
			if err != nil {
				t.Fatalf("checker: %v", err)
			}
			if !res.Linearizable {
				t.Errorf("history of %d ops NOT linearizable (key %d, %d ops)", len(h), res.FailedKey, res.Ops)
			}
		})
	}
}
