// Package linearize checks recorded concurrent histories of key-value
// operations for linearizability against sequential map semantics, in the
// style of Wing & Gong's algorithm with Lowe's refinements (as popularized
// by the porcupine checker): operations carry real-time invoke/return
// intervals; the checker searches for a total order that respects real time
// and reproduces every recorded result.
//
// Histories are partitioned by key — map operations on distinct keys
// commute, so each key's subhistory is checked independently, which keeps
// the NP-hard search tractable for test-sized histories.
//
// The TM stress tests use it to verify that transactional data structures
// over every TM system are linearizable, a stronger statement than the
// structural invariants alone.
package linearize

import (
	"fmt"
	"sort"
)

// Kind is the operation type.
type Kind uint8

const (
	// Get reads a key: Out reports the value and presence observed.
	Get Kind = iota
	// Put writes a key: Out reports the previous value and whether one
	// was replaced.
	Put
	// Delete removes a key: Out reports the removed value and presence.
	Delete
)

func (k Kind) String() string {
	switch k {
	case Get:
		return "get"
	case Put:
		return "put"
	case Delete:
		return "delete"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Op is one completed operation of a history.
type Op struct {
	Kind Kind
	Key  uint64
	// Val is the argument of a Put.
	Val uint64
	// OutVal and OutOK are the recorded result (see Kind docs).
	OutVal uint64
	OutOK  bool
	// Invoke and Return are real-time stamps with Invoke < Return; the
	// operation's linearization point lies somewhere inside.
	Invoke uint64
	Return uint64
}

// keyState is the sequential model: a single optional value.
type keyState struct {
	val     uint64
	present bool
}

// apply runs op against s, reporting whether the recorded result matches
// and the successor state.
func (s keyState) apply(op Op) (keyState, bool) {
	switch op.Kind {
	case Get:
		if op.OutOK != s.present || (s.present && op.OutVal != s.val) {
			return s, false
		}
		return s, true
	case Put:
		if op.OutOK != s.present || (s.present && op.OutVal != s.val) {
			return s, false
		}
		return keyState{val: op.Val, present: true}, true
	case Delete:
		if op.OutOK != s.present || (s.present && op.OutVal != s.val) {
			return s, false
		}
		return keyState{}, true
	default:
		return s, false
	}
}

// Result reports a check outcome.
type Result struct {
	Linearizable bool
	// FailedKey identifies the first key whose subhistory admitted no
	// linearization (when !Linearizable).
	FailedKey uint64
	// Ops is the size of the offending subhistory.
	Ops int
}

// Check verifies the history. Each per-key subhistory must have at most 64
// operations (the search uses a bitmask); CheckErr reports a descriptive
// error otherwise.
func Check(history []Op) Result {
	res, err := CheckErr(history)
	if err != nil {
		panic(err)
	}
	return res
}

// CheckErr verifies the history, returning an error for malformed input
// (inverted intervals, oversized partitions).
func CheckErr(history []Op) (Result, error) {
	byKey := make(map[uint64][]Op)
	for _, op := range history {
		if op.Return <= op.Invoke {
			return Result{}, fmt.Errorf("linearize: op %v on key %d has Return <= Invoke", op.Kind, op.Key)
		}
		byKey[op.Key] = append(byKey[op.Key], op)
	}
	for key, ops := range byKey {
		if len(ops) > 64 {
			return Result{}, fmt.Errorf("linearize: key %d has %d ops (max 64 per key)", key, len(ops))
		}
		if !checkKey(ops) {
			return Result{Linearizable: false, FailedKey: key, Ops: len(ops)}, nil
		}
	}
	return Result{Linearizable: true}, nil
}

// memoKey identifies a visited search node: which ops are already
// linearized and the model state they produced.
type memoKey struct {
	mask  uint64
	state keyState
}

// checkKey searches for a valid linearization of one key's subhistory.
func checkKey(ops []Op) bool {
	sort.Slice(ops, func(i, j int) bool { return ops[i].Invoke < ops[j].Invoke })
	n := len(ops)
	full := uint64(1)<<n - 1
	visited := make(map[memoKey]bool)
	var dfs func(done uint64, state keyState) bool
	dfs = func(done uint64, state keyState) bool {
		if done == full {
			return true
		}
		mk := memoKey{done, state}
		if visited[mk] {
			return false
		}
		visited[mk] = true
		// An operation may linearize next only if no other pending
		// operation returned before it was invoked (real-time order).
		minReturn := ^uint64(0)
		for i := 0; i < n; i++ {
			if done&(1<<i) == 0 && ops[i].Return < minReturn {
				minReturn = ops[i].Return
			}
		}
		for i := 0; i < n; i++ {
			if done&(1<<i) != 0 {
				continue
			}
			if ops[i].Invoke > minReturn {
				// Sorted by invoke: nothing later can precede minReturn
				// either.
				break
			}
			next, ok := state.apply(ops[i])
			if !ok {
				continue
			}
			if dfs(done|1<<i, next) {
				return true
			}
		}
		return false
	}
	return dfs(0, keyState{})
}
