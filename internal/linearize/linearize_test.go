package linearize

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// seqHistory builds a sequential (non-overlapping) history from a script,
// computing correct outputs from the model.
func seqHistory(script []Op) []Op {
	states := map[uint64]keyState{}
	t := uint64(1)
	out := make([]Op, 0, len(script))
	for _, op := range script {
		s := states[op.Key]
		op.OutVal, op.OutOK = s.val, s.present
		next, _ := s.apply(Op{Kind: op.Kind, Key: op.Key, Val: op.Val, OutVal: s.val, OutOK: s.present})
		states[op.Key] = next
		op.Invoke = t
		op.Return = t + 1
		t += 2
		out = append(out, op)
	}
	return out
}

func TestSequentialHistoriesLinearizable(t *testing.T) {
	h := seqHistory([]Op{
		{Kind: Get, Key: 1},
		{Kind: Put, Key: 1, Val: 10},
		{Kind: Get, Key: 1},
		{Kind: Put, Key: 1, Val: 20},
		{Kind: Delete, Key: 1},
		{Kind: Get, Key: 1},
		{Kind: Put, Key: 2, Val: 5},
		{Kind: Delete, Key: 2},
	})
	if res := Check(h); !res.Linearizable {
		t.Errorf("sequential history rejected: %+v", res)
	}
}

func TestStaleReadRejected(t *testing.T) {
	// Put(1,10) completes strictly before a Get that still reads absent.
	h := []Op{
		{Kind: Put, Key: 1, Val: 10, OutOK: false, Invoke: 1, Return: 2},
		{Kind: Get, Key: 1, OutOK: false, Invoke: 3, Return: 4},
	}
	if res := Check(h); res.Linearizable {
		t.Error("stale read accepted")
	}
}

func TestLostUpdateRejected(t *testing.T) {
	// Two sequential Puts both claim to replace nothing.
	h := []Op{
		{Kind: Put, Key: 1, Val: 10, OutOK: false, Invoke: 1, Return: 2},
		{Kind: Put, Key: 1, Val: 20, OutOK: false, Invoke: 3, Return: 4},
	}
	if res := Check(h); res.Linearizable {
		t.Error("lost update accepted")
	}
}

func TestFutureReadRejected(t *testing.T) {
	// A Get returns a value whose Put is invoked only after the Get
	// returned.
	h := []Op{
		{Kind: Get, Key: 1, OutVal: 10, OutOK: true, Invoke: 1, Return: 2},
		{Kind: Put, Key: 1, Val: 10, OutOK: false, Invoke: 3, Return: 4},
	}
	if res := Check(h); res.Linearizable {
		t.Error("future read accepted")
	}
}

func TestConcurrentEitherOrderAccepted(t *testing.T) {
	// A Get overlapping a Put may see either state.
	for _, seen := range []bool{false, true} {
		h := []Op{
			{Kind: Put, Key: 1, Val: 10, OutOK: false, Invoke: 1, Return: 10},
			{Kind: Get, Key: 1, OutVal: map[bool]uint64{true: 10, false: 0}[seen], OutOK: seen, Invoke: 2, Return: 9},
		}
		if res := Check(h); !res.Linearizable {
			t.Errorf("overlapping get (seen=%v) rejected", seen)
		}
	}
}

func TestNonOverlappingDistinctKeysIndependent(t *testing.T) {
	// A violation on key 2 must be pinned to key 2.
	h := seqHistory([]Op{
		{Kind: Put, Key: 1, Val: 10},
		{Kind: Get, Key: 1},
	})
	h = append(h,
		Op{Kind: Put, Key: 2, Val: 1, OutOK: false, Invoke: 100, Return: 101},
		Op{Kind: Get, Key: 2, OutOK: false, Invoke: 102, Return: 103},
	)
	res := Check(h)
	if res.Linearizable {
		t.Fatal("violation missed")
	}
	if res.FailedKey != 2 {
		t.Errorf("FailedKey = %d, want 2", res.FailedKey)
	}
}

func TestMalformedHistories(t *testing.T) {
	if _, err := CheckErr([]Op{{Kind: Get, Key: 1, Invoke: 5, Return: 5}}); err == nil {
		t.Error("inverted interval accepted")
	}
	big := make([]Op, 65)
	for i := range big {
		big[i] = Op{Kind: Get, Key: 1, Invoke: uint64(2*i + 1), Return: uint64(2*i + 2)}
	}
	if _, err := CheckErr(big); err == nil {
		t.Error("oversized partition accepted")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Get: "get", Put: "put", Delete: "delete", Kind(9): "Kind(9)"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q", k, k.String())
		}
	}
}

// TestQuickSequentialAlwaysLinearizable: any random script, executed
// sequentially with model-derived outputs, must be accepted.
func TestQuickSequentialAlwaysLinearizable(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		script := make([]Op, int(n)%48+1)
		for i := range script {
			script[i] = Op{
				Kind: Kind(rng.Intn(3)),
				Key:  uint64(rng.Intn(3)), // few keys: deep per-key histories
				Val:  uint64(rng.Intn(100)),
			}
		}
		return Check(seqHistory(script)).Linearizable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickPerturbedOutputsRejected: flipping one Get's observed presence in
// a sequential history (where that key is also written) should usually make
// it non-linearizable; at minimum the checker must never crash, and a
// flipped *final unambiguous* read must be rejected.
func TestQuickPerturbedFinalReadRejected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		script := make([]Op, 10)
		for i := range script {
			script[i] = Op{Kind: Kind(rng.Intn(3)), Key: 0, Val: uint64(rng.Intn(100))}
		}
		script = append(script, Op{Kind: Get, Key: 0})
		h := seqHistory(script)
		// Flip the final read's presence bit.
		last := &h[len(h)-1]
		last.OutOK = !last.OutOK
		if last.OutOK {
			last.OutVal = 12345 // a value never written
		}
		return !Check(h).Linearizable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	r.Do(Put, 1, 10, func() (uint64, bool) { return 0, false })
	r.Do(Get, 1, 0, func() (uint64, bool) { return 10, true })
	h := r.History()
	if len(h) != 2 {
		t.Fatalf("history has %d ops, want 2", len(h))
	}
	if h[0].Invoke >= h[0].Return || h[0].Return >= h[1].Invoke {
		t.Errorf("timestamps not ordered: %+v", h)
	}
	if res := Check(h); !res.Linearizable {
		t.Error("recorded sequential history rejected")
	}
}
