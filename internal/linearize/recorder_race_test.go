package linearize_test

// Race-mode coverage for the recorder, from two directions: genuinely
// concurrent goroutines hammering Do against a known-linearizable reference
// (the checker must accept and -race must stay quiet on the recorder's
// clock/append paths), and histories recorded through the explore
// scheduler, which certifies the scheduler↔recorder integration both when
// the history is correct and when it provably is not.

import (
	"math/rand"
	"sync"
	"testing"

	"rhnorec/internal/explore"
	"rhnorec/internal/linearize"
)

// TestRecorderConcurrentLinearizable drives the recorder from truly parallel
// goroutines over a mutex-protected map — a linearizable implementation by
// construction — and requires the checker to accept the recorded history.
func TestRecorderConcurrentLinearizable(t *testing.T) {
	rec := linearize.NewRecorder()
	var mu sync.Mutex
	model := map[uint64]uint64{}

	const goroutines, opsEach, keys = 6, 10, 2
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			for i := 0; i < opsEach; i++ {
				k := uint64(rng.Intn(keys))
				switch rng.Intn(3) {
				case 0:
					v := uint64(1 + rng.Intn(100))
					rec.Do(linearize.Put, k, v, func() (uint64, bool) {
						mu.Lock()
						defer mu.Unlock()
						old, ok := model[k]
						model[k] = v
						return old, ok
					})
				case 1:
					rec.Do(linearize.Delete, k, 0, func() (uint64, bool) {
						mu.Lock()
						defer mu.Unlock()
						old, ok := model[k]
						delete(model, k)
						return old, ok
					})
				default:
					rec.Do(linearize.Get, k, 0, func() (uint64, bool) {
						mu.Lock()
						defer mu.Unlock()
						v, ok := model[k]
						return v, ok
					})
				}
			}
		}(g)
	}
	wg.Wait()

	res, err := linearize.CheckErr(rec.History())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Linearizable {
		t.Fatalf("mutex-map history rejected: key %d, %d ops", res.FailedKey, res.Ops)
	}
}

// TestRecorderThroughExploreScheduler records kv histories under scheduled
// adversarial interleavings (with injected faults) of every TM and requires
// the checker to accept each one.
func TestRecorderThroughExploreScheduler(t *testing.T) {
	for _, algo := range []string{"rh-norec", "hy-norec", "norec"} {
		cfg := explore.Config{Scenario: "kv-linearize", Algo: algo}
		found, runs, err := explore.ExplorePCT(cfg, 1, 8, 3, 256, 0.1)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if found != nil {
			t.Fatalf("%s: linearizability oracle rejected a real-protocol run (seed %d after %d runs): %s",
				algo, found.Seed, runs, found.Result.Violation)
		}
	}
}

// TestRecorderRejectsNonLinearizable seeds histories that violate map
// semantics in distinct ways; the checker must reject every one.
func TestRecorderRejectsNonLinearizable(t *testing.T) {
	cases := []struct {
		name string
		ops  []linearize.Op
	}{
		{
			// A read observes a value nobody ever wrote.
			name: "phantom-read",
			ops: []linearize.Op{
				{Kind: linearize.Put, Key: 1, Val: 10, OutOK: false, Invoke: 1, Return: 2},
				{Kind: linearize.Get, Key: 1, OutVal: 99, OutOK: true, Invoke: 3, Return: 4},
			},
		},
		{
			// A read observes a stale value after the overwrite returned.
			name: "stale-read",
			ops: []linearize.Op{
				{Kind: linearize.Put, Key: 1, Val: 10, OutOK: false, Invoke: 1, Return: 2},
				{Kind: linearize.Put, Key: 1, Val: 20, OutVal: 10, OutOK: true, Invoke: 3, Return: 4},
				{Kind: linearize.Get, Key: 1, OutVal: 10, OutOK: true, Invoke: 5, Return: 6},
			},
		},
		{
			// A deleted key is still observed present.
			name: "undead-delete",
			ops: []linearize.Op{
				{Kind: linearize.Put, Key: 1, Val: 10, OutOK: false, Invoke: 1, Return: 2},
				{Kind: linearize.Delete, Key: 1, OutVal: 10, OutOK: true, Invoke: 3, Return: 4},
				{Kind: linearize.Get, Key: 1, OutVal: 10, OutOK: true, Invoke: 5, Return: 6},
			},
		},
	}
	for _, tc := range cases {
		res, err := linearize.CheckErr(tc.ops)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Linearizable {
			t.Errorf("%s: accepted a non-linearizable history", tc.name)
		}
	}
}
