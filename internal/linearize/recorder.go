package linearize

import (
	"sync"
	"sync/atomic"
)

// Recorder collects a concurrent history with a shared logical clock. It is
// safe for concurrent use; Do wraps one operation execution with invoke and
// return stamps.
type Recorder struct {
	clock atomic.Uint64
	mu    sync.Mutex
	ops   []Op
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Do executes exec, stamping its real-time interval, and records the
// operation. exec returns the operation's observed result.
func (r *Recorder) Do(kind Kind, key, val uint64, exec func() (outVal uint64, outOK bool)) {
	invoke := r.clock.Add(1)
	outVal, outOK := exec()
	ret := r.clock.Add(1)
	r.mu.Lock()
	r.ops = append(r.ops, Op{
		Kind: kind, Key: key, Val: val,
		OutVal: outVal, OutOK: outOK,
		Invoke: invoke, Return: ret,
	})
	r.mu.Unlock()
}

// History returns the recorded operations.
func (r *Recorder) History() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Op(nil), r.ops...)
}
