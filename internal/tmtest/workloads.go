package tmtest

import (
	"fmt"
	"math/rand"

	"rhnorec/internal/mem"
	"rhnorec/internal/rbtree"
	"rhnorec/internal/tm"
)

// This file holds the invariant workloads shared by the conformance suite,
// the rhstress soak harness and the schedule explorer (internal/explore).
// Keeping one copy matters beyond hygiene: the explorer replays recorded
// schedules, so the worker logic driving a trace must be byte-for-byte the
// logic the other harnesses run, or a shrunk counterexample would not
// reproduce outside the explorer.

// BankConfig parameterizes the bank-transfer workload: transfers between
// random accounts must preserve the total balance, and (optionally)
// read-only observers assert the in-transaction invariant — the opacity
// check every TM in this repository claims to satisfy.
type BankConfig struct {
	// Accounts is the number of accounts (each on its own cache line).
	Accounts int
	// Initial is every account's starting balance.
	Initial uint64
	// TransferMax bounds a single transfer amount (exclusive).
	TransferMax int
	// ObserverEvery, when > 0, makes roughly 1/ObserverEvery of the loop
	// iterations run a read-only full-sum observer instead of a transfer.
	// Zero disables observers (and draws no dice for them, so the transfer
	// RNG sequence matches the observer-free workload exactly).
	ObserverEvery int
}

func (c BankConfig) withDefaults() BankConfig {
	if c.Accounts <= 0 {
		c.Accounts = 32
	}
	if c.Initial == 0 {
		c.Initial = 1000
	}
	if c.TransferMax <= 0 {
		c.TransferMax = 50
	}
	return c
}

// BankAccount returns account i's address given the base BankSetup returned.
func BankAccount(base mem.Addr, i int) mem.Addr {
	return base + mem.Addr(i*mem.LineWords)
}

// BankSetup allocates and funds the accounts, one per cache line.
func BankSetup(th tm.Thread, cfg BankConfig) (mem.Addr, error) {
	cfg = cfg.withDefaults()
	var base mem.Addr
	err := th.Run(func(tx tm.Tx) error {
		base = tx.Alloc(cfg.Accounts * mem.LineWords)
		for i := 0; i < cfg.Accounts; i++ {
			tx.Store(BankAccount(base, i), cfg.Initial)
		}
		return nil
	})
	return base, err
}

// BankWorker runs one worker's transfer loop. With ops >= 0 it runs exactly
// ops iterations; with ops < 0 it runs until stop returns true. Observer
// transactions report invariant violations through report (which must be
// non-nil when cfg.ObserverEvery > 0); violations inside attempts that later
// restart count too, exactly as in opacityWithin — opacity promises a
// consistent snapshot to live transactions, not just committed ones.
func BankWorker(th tm.Thread, cfg BankConfig, base mem.Addr, rng *rand.Rand, ops int, stop func() bool, report func(msg string)) error {
	cfg = cfg.withDefaults()
	want := uint64(cfg.Accounts) * cfg.Initial
	for j := 0; ops < 0 || j < ops; j++ {
		if ops < 0 && stop() {
			return nil
		}
		if cfg.ObserverEvery > 0 && rng.Intn(cfg.ObserverEvery) == 0 {
			if err := th.RunReadOnly(func(tx tm.Tx) error {
				var sum uint64
				for k := 0; k < cfg.Accounts; k++ {
					sum += tx.Load(BankAccount(base, k))
				}
				if sum != want {
					report(fmt.Sprintf("bank observer: sum %d, want %d", sum, want))
				}
				return nil
			}); err != nil {
				return err
			}
			continue
		}
		from, to := rng.Intn(cfg.Accounts), rng.Intn(cfg.Accounts)
		amt := uint64(rng.Intn(cfg.TransferMax))
		if err := th.Run(func(tx tm.Tx) error {
			bf := tx.Load(BankAccount(base, from))
			bt := tx.Load(BankAccount(base, to))
			if bf < amt {
				return nil // insufficient funds; still commits (no-op)
			}
			if from == to {
				return nil
			}
			tx.Store(BankAccount(base, from), bf-amt)
			tx.Store(BankAccount(base, to), bt+amt)
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// BankCheck verifies the conserved total over a tear-free snapshot.
func BankCheck(m *mem.Memory, cfg BankConfig, base mem.Addr) error {
	cfg = cfg.withDefaults()
	snap := make([]uint64, cfg.Accounts*mem.LineWords)
	m.Snapshot(base, snap)
	var total uint64
	for i := 0; i < cfg.Accounts; i++ {
		total += snap[i*mem.LineWords]
	}
	if want := uint64(cfg.Accounts) * cfg.Initial; total != want {
		return fmt.Errorf("bank: total balance %d, want %d", total, want)
	}
	return nil
}

// TreeConfig parameterizes the red-black tree workload: concurrent
// put/delete/get traffic must preserve the structural invariants.
type TreeConfig struct {
	// InitialKeys seeds the tree with keys 0, 2, ..., 2*(InitialKeys-1).
	InitialKeys int
	// KeySpace bounds the keys workers touch (exclusive).
	KeySpace int
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.InitialKeys <= 0 {
		c.InitialKeys = 128
	}
	if c.KeySpace <= 0 {
		c.KeySpace = 2 * c.InitialKeys
	}
	return c
}

// TreeSetup builds and seeds the shared tree.
func TreeSetup(th tm.Thread, cfg TreeConfig) (rbtree.Tree, error) {
	cfg = cfg.withDefaults()
	var tree rbtree.Tree
	err := th.Run(func(tx tm.Tx) error {
		tree = rbtree.New(tx)
		for k := uint64(0); k < uint64(cfg.InitialKeys); k++ {
			tree.Put(tx, k*2, k)
		}
		return nil
	})
	return tree, err
}

// TreeWorker runs one worker's mutation loop (30% put, 20% delete, 50%
// lookup). With ops >= 0 it runs exactly ops iterations; with ops < 0 it
// runs until stop returns true.
func TreeWorker(th tm.Thread, tree rbtree.Tree, cfg TreeConfig, rng *rand.Rand, ops int, stop func() bool) error {
	cfg = cfg.withDefaults()
	for j := 0; ops < 0 || j < ops; j++ {
		if ops < 0 && stop() {
			return nil
		}
		k := uint64(rng.Intn(cfg.KeySpace))
		var err error
		switch rng.Intn(10) {
		case 0, 1, 2:
			err = th.Run(func(tx tm.Tx) error { tree.Put(tx, k, k); return nil })
		case 3, 4:
			err = th.Run(func(tx tm.Tx) error { tree.Delete(tx, k); return nil })
		default:
			err = th.RunReadOnly(func(tx tm.Tx) error { tree.Get(tx, k); return nil })
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// TreeCheck validates the red-black invariants in one transaction.
func TreeCheck(th tm.Thread, tree rbtree.Tree) error {
	return th.Run(func(tx tm.Tx) error { return tree.CheckInvariants(tx) })
}
