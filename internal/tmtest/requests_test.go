package tmtest

import (
	"math/rand"
	"testing"
)

func TestZipfKeysBoundsAndDeterminism(t *testing.T) {
	for _, s := range []float64{0, 0.99, 1.2} {
		z := NewZipfKeys(1000, s)
		a := rand.New(rand.NewSource(42))
		b := rand.New(rand.NewSource(42))
		for i := 0; i < 5000; i++ {
			ka, kb := z.Next(a), z.Next(b)
			if ka != kb {
				t.Fatalf("s=%g: draw %d diverged (%d vs %d) with equal seeds", s, i, ka, kb)
			}
			if ka >= 1000 {
				t.Fatalf("s=%g: key %d out of range", s, ka)
			}
		}
	}
}

func TestZipfKeysSkew(t *testing.T) {
	const n, draws = 1000, 20000
	rng := rand.New(rand.NewSource(7))
	counts := func(s float64) (top10 int) {
		z := NewZipfKeys(n, s)
		for i := 0; i < draws; i++ {
			if z.Next(rng) < 10 {
				top10++
			}
		}
		return top10
	}
	uniform := counts(0)
	skewed := counts(0.99)
	heavier := counts(1.2)
	// Uniform puts ~1% of draws on the top 10 ranks; zipf 0.99 puts a large
	// multiple of that there, and 1.2 more still.
	if skewed < 5*uniform {
		t.Errorf("zipf 0.99 top-10 mass %d not ≫ uniform %d", skewed, uniform)
	}
	if heavier <= skewed {
		t.Errorf("zipf 1.2 top-10 mass %d not > zipf 0.99 %d", heavier, skewed)
	}
}

func TestZipfKeysScramble(t *testing.T) {
	z := NewZipfKeys(1024, 1.2)
	rng := rand.New(rand.NewSource(1))
	seen := map[uint64]int{}
	for i := 0; i < 10000; i++ {
		k := z.ScrambledNext(rng)
		if k >= 1024 {
			t.Fatalf("scrambled key %d out of range", k)
		}
		seen[k]++
	}
	// The hot mass must not sit on contiguous low keys after scrambling.
	low := 0
	for k, c := range seen {
		if k < 10 {
			low += c
		}
	}
	if low > 2000 {
		t.Errorf("scramble left %d/10000 draws on keys <10 (hot ranks not dispersed)", low)
	}
}

func TestZipfKeysClamps(t *testing.T) {
	if got := NewZipfKeys(0, 1).N(); got != 1 {
		t.Errorf("N(0 clamped) = %d, want 1", got)
	}
	if got := NewZipfKeys(1<<30, 1).N(); got != maxZipfKeys {
		t.Errorf("N(1<<30 clamped) = %d, want %d", got, maxZipfKeys)
	}
	z := NewZipfKeys(1, 2)
	if k := z.Next(rand.New(rand.NewSource(1))); k != 0 {
		t.Errorf("single-key sampler drew %d", k)
	}
}

func TestRequestMixPick(t *testing.T) {
	mix := RequestMix{GetFrac: 0.5, CasFrac: 0.1, ScanFrac: 0.1, TxnFrac: 0.1}.WithDefaults()
	if mix.TxnOps != 4 || mix.ScanCount != 16 {
		t.Fatalf("defaults: %+v", mix)
	}
	rng := rand.New(rand.NewSource(3))
	var counts [NumReqKinds]int
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[mix.Pick(rng)]++
	}
	fracs := map[ReqKind]float64{ReqGet: 0.5, ReqCas: 0.1, ReqScan: 0.1, ReqTxn: 0.1, ReqPut: 0.2}
	for kind, want := range fracs {
		got := float64(counts[kind]) / draws
		if got < want-0.03 || got > want+0.03 {
			t.Errorf("%s fraction = %.3f, want %.2f±0.03", kind, got, want)
		}
	}
}

func TestReqKindNames(t *testing.T) {
	want := []string{"get", "put", "cas", "scan", "txn"}
	for k := ReqKind(0); k < NumReqKinds; k++ {
		if k.String() != want[k] {
			t.Errorf("kind %d name %q, want %q", k, k.String(), want[k])
		}
	}
	if NumReqKinds.String() != "invalid" {
		t.Errorf("out-of-range name %q", NumReqKinds.String())
	}
}
