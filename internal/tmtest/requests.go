package tmtest

import (
	"math"
	"math/rand"
	"sort"
)

// This file holds the service-request generators shared by the closed-loop
// load generator (cmd/rhload) and the serve-layer tests: a bounded zipfian
// key sampler and an endpoint-mix picker. They live here — next to the bank
// and rbtree invariant workloads — so every harness that drives the KV
// service draws keys and op mixes from the same, seedable code path.

// ZipfKeys samples keys in [0, n) with probability proportional to
// 1/(k+1)^s. Unlike math/rand's Zipf it accepts any exponent s >= 0
// (s = 0 is the uniform distribution; the service sweeps use s ∈
// {0, 0.99, 1.2}): the bounded key space lets it precompute the inverse
// CDF once and answer each draw with one uniform variate and a binary
// search. Deterministic given the caller's *rand.Rand.
type ZipfKeys struct {
	n   int
	cdf []float64 // nil for the uniform fast path (s == 0)
}

// maxZipfKeys bounds the precomputed CDF so a mistyped key-space size
// cannot allocate unbounded memory (8 MiB of float64 at the bound).
const maxZipfKeys = 1 << 20

// NewZipfKeys builds a sampler over [0, n) with exponent s. n is clamped
// to [1, maxZipfKeys]; negative s is treated as 0 (uniform).
func NewZipfKeys(n int, s float64) *ZipfKeys {
	if n < 1 {
		n = 1
	}
	if n > maxZipfKeys {
		n = maxZipfKeys
	}
	z := &ZipfKeys{n: n}
	if s <= 0 {
		return z
	}
	z.cdf = make([]float64, n)
	var sum float64
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		z.cdf[k] = sum
	}
	for k := range z.cdf {
		z.cdf[k] /= sum
	}
	return z
}

// N reports the key-space size.
func (z *ZipfKeys) N() int { return z.n }

// Next draws one key. Rank 0 (the hottest key) is index 0; callers that
// want hot keys spread across cache lines or stripes should permute the
// rank themselves (see ScrambledNext).
func (z *ZipfKeys) Next(rng *rand.Rand) uint64 {
	if z.cdf == nil {
		return uint64(rng.Intn(z.n))
	}
	u := rng.Float64()
	return uint64(sort.SearchFloat64s(z.cdf, u))
}

// ScrambledNext draws one key with the rank order scrambled by a fixed
// multiplicative hash, so the hottest keys land on unrelated slots (and
// therefore unrelated stripes) instead of clustering at the bottom of the
// arena. The scramble is a bijection on [0, n) only when n is a power of
// two; for other sizes it mixes and reduces, which preserves the skew
// profile well enough for load generation.
func (z *ZipfKeys) ScrambledNext(rng *rand.Rand) uint64 {
	k := z.Next(rng)
	h := (k + 1) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return h % uint64(z.n)
}

// ReqKind is one service endpoint's request kind.
type ReqKind uint8

const (
	// ReqGet is a single-key transactional read.
	ReqGet ReqKind = iota
	// ReqPut is a single-key transactional write.
	ReqPut
	// ReqCas is a single-key compare-and-swap.
	ReqCas
	// ReqScan is a contiguous multi-key read.
	ReqScan
	// ReqTxn is a multi-op transactional batch.
	ReqTxn

	// NumReqKinds bounds the enum.
	NumReqKinds
)

var reqKindNames = [NumReqKinds]string{"get", "put", "cas", "scan", "txn"}

// String returns the kind's endpoint name.
func (k ReqKind) String() string {
	if k < NumReqKinds {
		return reqKindNames[k]
	}
	return "invalid"
}

// RequestMix is the endpoint mix of a generated request stream. The four
// explicit fractions must sum to at most 1; the remainder is ReqPut.
type RequestMix struct {
	// GetFrac is the fraction of single-key reads.
	GetFrac float64
	// CasFrac is the fraction of compare-and-swaps.
	CasFrac float64
	// ScanFrac is the fraction of contiguous scans.
	ScanFrac float64
	// TxnFrac is the fraction of multi-op TXN batches.
	TxnFrac float64
	// TxnOps is the op count of a generated TXN batch (default 4).
	TxnOps int
	// ScanCount is the key count of a generated scan (default 16).
	ScanCount int
}

// WithDefaults fills zero batch knobs.
func (m RequestMix) WithDefaults() RequestMix {
	if m.TxnOps <= 0 {
		m.TxnOps = 4
	}
	if m.ScanCount <= 0 {
		m.ScanCount = 16
	}
	return m
}

// Pick draws one request kind from the mix.
func (m RequestMix) Pick(rng *rand.Rand) ReqKind {
	u := rng.Float64()
	if u < m.GetFrac {
		return ReqGet
	}
	u -= m.GetFrac
	if u < m.CasFrac {
		return ReqCas
	}
	u -= m.CasFrac
	if u < m.ScanFrac {
		return ReqScan
	}
	u -= m.ScanFrac
	if u < m.TxnFrac {
		return ReqTxn
	}
	return ReqPut
}
