// Package tmtest provides a conformance suite that every transactional
// memory system in this repository must pass. Each algorithm package runs
// the suite from its own tests via RunConformance, so safety properties
// (atomicity, isolation, opacity, read-own-writes, user aborts, allocation
// semantics, privatization) are exercised uniformly across Lock Elision,
// NOrec, TL2, Hybrid NOrec and RH NOrec.
package tmtest

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"rhnorec/internal/conformance"
	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
)

// Factory builds the system under test over a fresh memory.
type Factory func(m *mem.Memory) tm.System

// Options tunes the suite for a particular algorithm.
type Options struct {
	// Threads is the worker count for concurrent subtests (default 4).
	Threads int
	// Ops is the per-thread operation count (default 300).
	Ops int
	// SkipPrivatization skips the privatization subtest for algorithms
	// that do not claim the property.
	SkipPrivatization bool
	// NondeterministicAborts relaxes assertions that require attempts to
	// fail only on real conflicts (e.g. exact callback-execution counts),
	// for configurations with spurious hardware aborts.
	NondeterministicAborts bool
}

func (o Options) withDefaults() Options {
	if o.Threads <= 0 {
		o.Threads = 4
	}
	if o.Ops <= 0 {
		o.Ops = 300
	}
	return o
}

// RunConformance runs the whole suite against the factory.
func RunConformance(t *testing.T, f Factory, opts Options) {
	opts = opts.withDefaults()
	t.Run("SequentialSemantics", func(t *testing.T) { sequentialSemantics(t, f) })
	t.Run("ReadOwnWrites", func(t *testing.T) { readOwnWrites(t, f) })
	t.Run("UserAbortRollsBack", func(t *testing.T) { userAbortRollsBack(t, f, opts) })
	t.Run("ReadOnlyStorePanics", func(t *testing.T) { readOnlyStorePanics(t, f) })
	t.Run("ConcurrentCounter", func(t *testing.T) { concurrentCounter(t, f, opts) })
	t.Run("Scenarios", func(t *testing.T) { registryScenarios(t, f, opts) })
	t.Run("OpacityWithinTransaction", func(t *testing.T) { opacityWithin(t, f, opts) })
	t.Run("WriteSkewPrevented", func(t *testing.T) { writeSkew(t, f, opts) })
	t.Run("AllocFreeUnderLoad", func(t *testing.T) { allocFree(t, f, opts) })
	if !opts.SkipPrivatization {
		t.Run("Privatization", func(t *testing.T) { privatization(t, f, opts) })
	}
	t.Run("MixedReadOnlyAndWriters", func(t *testing.T) { mixedReadOnly(t, f, opts) })
	t.Run("FlatNesting", func(t *testing.T) { flatNesting(t, f) })
	t.Run("LargeTransactions", func(t *testing.T) { largeTransactions(t, f, opts) })
	t.Run("MixedSizeTransactions", func(t *testing.T) { mixedSizes(t, f, opts) })
	t.Run("AbortStorm", func(t *testing.T) { abortStorm(t, f, opts) })
}

// newMem builds the suite's memory. The stripe count is overridable via
// RHNOREC_STRIPES so CI can prove the conformance histories are identical
// on the degenerate single-clock substrate (-stripes 1, the pre-striping
// behaviour) and on the default striped one.
func newMem() *mem.Memory {
	if s := os.Getenv("RHNOREC_STRIPES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			return mem.NewStriped(1<<20, n)
		}
	}
	return mem.New(1 << 20)
}

// sequentialSemantics: a single thread performing random reads and writes
// must observe exactly the semantics of direct memory access.
func sequentialSemantics(t *testing.T, f Factory) {
	m := newMem()
	sys := f(m)
	th := sys.NewThread()
	defer th.Close()
	var base mem.Addr
	if err := th.Run(func(tx tm.Tx) error {
		base = tx.Alloc(128)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	shadow := make([]uint64, 128)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		nOps := 1 + rng.Intn(8)
		type op struct {
			write bool
			off   int
			val   uint64
		}
		ops := make([]op, nOps)
		for j := range ops {
			ops[j] = op{rng.Intn(2) == 0, rng.Intn(128), rng.Uint64()}
		}
		if err := th.Run(func(tx tm.Tx) error {
			pending := make(map[int]uint64) // writes earlier in this txn
			for _, o := range ops {
				a := base + mem.Addr(o.off)
				if o.write {
					tx.Store(a, o.val)
					pending[o.off] = o.val
					continue
				}
				want, ok := pending[o.off]
				if !ok {
					want = shadow[o.off]
				}
				if got := tx.Load(a); got != want {
					return fmt.Errorf("iter %d: Load(%d) = %d, want %d", i, o.off, got, want)
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for _, o := range ops {
			if o.write {
				shadow[o.off] = o.val
			}
		}
	}
}

func readOwnWrites(t *testing.T, f Factory) {
	m := newMem()
	sys := f(m)
	th := sys.NewThread()
	defer th.Close()
	if err := th.Run(func(tx tm.Tx) error {
		a := tx.Alloc(2)
		tx.Store(a, 11)
		if got := tx.Load(a); got != 11 {
			return fmt.Errorf("read-own-write = %d, want 11", got)
		}
		tx.Store(a, 22)
		if got := tx.Load(a); got != 22 {
			return fmt.Errorf("second read-own-write = %d, want 22", got)
		}
		if got := tx.Load(a + 1); got != 0 {
			return fmt.Errorf("untouched word = %d, want 0", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

var errUser = errors.New("user abort")

func userAbortRollsBack(t *testing.T, f Factory, opts Options) {
	m := newMem()
	sys := f(m)
	th := sys.NewThread()
	defer th.Close()
	var a mem.Addr
	if err := th.Run(func(tx tm.Tx) error {
		a = tx.Alloc(2)
		tx.Store(a, 5)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	calls := 0
	err := th.Run(func(tx tm.Tx) error {
		calls++
		tx.Store(a, 77)
		tx.Store(a+1, 88)
		return errUser
	})
	if !errors.Is(err, errUser) {
		t.Fatalf("Run error = %v, want errUser", err)
	}
	if calls != 1 && !opts.NondeterministicAborts {
		t.Errorf("user-aborting callback ran %d times, want 1 (no retry)", calls)
	}
	if err := th.Run(func(tx tm.Tx) error {
		if got := tx.Load(a); got != 5 {
			return fmt.Errorf("word a = %d after user abort, want 5", got)
		}
		if got := tx.Load(a + 1); got != 0 {
			return fmt.Errorf("word a+1 = %d after user abort, want 0", got)
		}
		return nil
	}); err != nil {
		t.Error(err)
	}
	if th.Stats().UserAborts != 1 {
		t.Errorf("UserAborts = %d, want 1", th.Stats().UserAborts)
	}
}

func readOnlyStorePanics(t *testing.T, f Factory) {
	m := newMem()
	sys := f(m)
	th := sys.NewThread()
	defer th.Close()
	var a mem.Addr
	if err := th.Run(func(tx tm.Tx) error { a = tx.Alloc(1); return nil }); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Store inside RunReadOnly did not panic")
		}
	}()
	_ = th.RunReadOnly(func(tx tm.Tx) error {
		tx.Store(a, 1)
		return nil
	})
}

func concurrentCounter(t *testing.T, f Factory, opts Options) {
	m := newMem()
	sys := f(m)
	setup := sys.NewThread()
	var a mem.Addr
	if err := setup.Run(func(tx tm.Tx) error { a = tx.Alloc(1); return nil }); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	var wg sync.WaitGroup
	for i := 0; i < opts.Threads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			for j := 0; j < opts.Ops; j++ {
				if err := th.Run(func(tx tm.Tx) error {
					tx.Store(a, tx.Load(a)+1)
					return nil
				}); err != nil {
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := m.LoadPlain(a); got != uint64(opts.Threads*opts.Ops) {
		t.Errorf("counter = %d, want %d (lost updates)", got, opts.Threads*opts.Ops)
	}
}

// registryScenarios: every workload in the shared conformance registry
// (internal/conformance) — bank transfers, the red-black tree, the session
// store, the rate limiter, the inventory checkout, the graph fan-out —
// passes setup → workers → invariant check under this system. The same
// entries drive rhstress soaks, rhbench sweeps and the schedule explorer.
func registryScenarios(t *testing.T, f Factory, opts Options) {
	for _, sc := range conformance.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			m := newMem()
			sys := f(m)
			if err := sc.Drive(sys, conformance.ScaleTest, opts.Threads, opts.Ops, 0, 1); err != nil {
				t.Error(err)
			}
		})
	}
}

// opacityWithin: every transaction — including attempts that will restart —
// must observe the x+y invariant at the moment both loads returned. A
// violation inside the callback is recorded; committed violations and
// in-flight violations both count, because opacity promises a consistent
// snapshot to live transactions, not just committed ones.
func opacityWithin(t *testing.T, f Factory, opts Options) {
	m := newMem()
	sys := f(m)
	setup := sys.NewThread()
	var x, y mem.Addr
	if err := setup.Run(func(tx tm.Tx) error {
		x = tx.Alloc(mem.LineWords)
		y = tx.Alloc(mem.LineWords)
		tx.Store(x, 1000)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	var violations atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < opts.Threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			rng := rand.New(rand.NewSource(int64(id + 100)))
			for j := 0; j < opts.Ops; j++ {
				if id%2 == 0 {
					_ = th.Run(func(tx tm.Tx) error { // mover
						vx := tx.Load(x)
						vy := tx.Load(y)
						if vx+vy != 1000 {
							violations.Add(1)
						}
						d := uint64(rng.Intn(10))
						if vx >= d {
							tx.Store(x, vx-d)
							tx.Store(y, vy+d)
						} else {
							tx.Store(x, vx+vy)
							tx.Store(y, 0)
						}
						return nil
					})
				} else {
					_ = th.RunReadOnly(func(tx tm.Tx) error { // observer
						vx := tx.Load(x)
						vy := tx.Load(y)
						if vx+vy != 1000 {
							violations.Add(1)
						}
						return nil
					})
				}
			}
		}(i)
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Errorf("opacity violated %d times (transaction observed x+y != 1000)", violations.Load())
	}
	if got := m.LoadPlain(x) + m.LoadPlain(y); got != 1000 {
		t.Errorf("final x+y = %d, want 1000", got)
	}
}

// writeSkew: two transactions each read both words and write one; under
// serializability at most one of a conflicting pair commits with the stale
// premise, so x+y never exceeds the cap.
func writeSkew(t *testing.T, f Factory, opts Options) {
	m := newMem()
	sys := f(m)
	setup := sys.NewThread()
	var x, y mem.Addr
	if err := setup.Run(func(tx tm.Tx) error {
		x = tx.Alloc(mem.LineWords)
		y = tx.Alloc(mem.LineWords)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			for j := 0; j < opts.Ops; j++ {
				_ = th.Run(func(tx tm.Tx) error {
					sum := tx.Load(x) + tx.Load(y)
					if sum == 0 { // the "constraint": only one word may go up
						if id == 0 {
							tx.Store(x, 1)
						} else {
							tx.Store(y, 1)
						}
					}
					return nil
				})
				_ = th.Run(func(tx tm.Tx) error { // reset
					if tx.Load(x)+tx.Load(y) == 2 {
						return nil // leave the evidence in place
					}
					tx.Store(x, 0)
					tx.Store(y, 0)
					return nil
				})
			}
		}(i)
	}
	wg.Wait()
	if got := m.LoadPlain(x) + m.LoadPlain(y); got > 1 {
		t.Errorf("write skew admitted: x+y = %d, want <= 1", got)
	}
}

// allocFree: a shared transactional stack of nodes is pushed and popped
// concurrently; allocation balance must hold and no node may be observed
// torn.
func allocFree(t *testing.T, f Factory, opts Options) {
	m := newMem()
	sys := f(m)
	setup := sys.NewThread()
	var head mem.Addr
	if err := setup.Run(func(tx tm.Tx) error { head = tx.Alloc(1); return nil }); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	// node layout: [next, payload, payloadCheck]
	const nodeWords = 3
	var wg sync.WaitGroup
	var torn atomic.Uint64
	for i := 0; i < opts.Threads; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < opts.Ops; j++ {
				if rng.Intn(2) == 0 {
					v := rng.Uint64()
					_ = th.Run(func(tx tm.Tx) error { // push
						n := tx.Alloc(nodeWords)
						tx.Store(n, tx.Load(head))
						tx.Store(n+1, v)
						tx.Store(n+2, ^v)
						tx.Store(head, uint64(n))
						return nil
					})
				} else {
					_ = th.Run(func(tx tm.Tx) error { // pop
						n := mem.Addr(tx.Load(head))
						if n == mem.Nil {
							return nil
						}
						if tx.Load(n+1) != ^tx.Load(n+2) {
							torn.Add(1)
						}
						tx.Store(head, tx.Load(n))
						tx.Free(n, nodeWords)
						return nil
					})
				}
			}
		}(int64(i + 31))
	}
	wg.Wait()
	if torn.Load() != 0 {
		t.Errorf("observed %d torn nodes", torn.Load())
	}
	// Count remaining stack nodes; allocation accounting must match
	// (head block + live nodes; limbo blocks are still "live" until their
	// grace period, so only check that nothing was lost).
	var nodes int64
	for n := mem.Addr(m.LoadPlain(head)); n != mem.Nil; n = mem.Addr(m.LoadPlain(n)) {
		nodes++
	}
	if live := m.LiveBlocks(); live < nodes+1 {
		t.Errorf("LiveBlocks = %d < reachable nodes %d + head", live, nodes+1)
	}
}

// privatization: a thread transactionally detaches a two-word node from a
// shared slot, then — outside any transaction — reads it with plain loads.
// Writers transactionally update the node in place while it is shared. The
// privatizer must never observe a half-applied update after detaching.
func privatization(t *testing.T, f Factory, opts Options) {
	m := newMem()
	sys := f(m)
	setup := sys.NewThread()
	var slot mem.Addr
	mkNode := func(tx tm.Tx) mem.Addr {
		n := tx.Alloc(2 * mem.LineWords)
		tx.Store(n, 0)
		tx.Store(n+mem.LineWords, 0)
		return n
	}
	if err := setup.Run(func(tx tm.Tx) error {
		slot = tx.Alloc(1)
		tx.Store(slot, uint64(mkNode(tx)))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	var stop atomic.Bool
	var bad atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < opts.Threads-1; i++ {
		wg.Add(1)
		go func(seed int64) { // writers: keep the two halves equal
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				v := rng.Uint64()
				_ = th.Run(func(tx tm.Tx) error {
					n := mem.Addr(tx.Load(slot))
					if n == mem.Nil {
						return nil
					}
					tx.Store(n, v)
					tx.Store(n+mem.LineWords, v)
					return nil
				})
			}
		}(int64(i + 77))
	}
	wg.Add(1)
	go func() { // privatizer
		defer wg.Done()
		th := sys.NewThread()
		defer th.Close()
		for round := 0; round < opts.Ops/4 && !stop.Load(); round++ {
			var n mem.Addr
			_ = th.Run(func(tx tm.Tx) error {
				n = mem.Addr(tx.Load(slot))
				tx.Store(slot, 0) // detach: the node is now private
				return nil
			})
			if n != mem.Nil {
				// Non-transactional access to privatized data.
				a := m.LoadPlain(n)
				b := m.LoadPlain(n + mem.LineWords)
				if a != b {
					bad.Add(1)
				}
			}
			_ = th.Run(func(tx tm.Tx) error { // re-publish
				tx.Store(slot, uint64(n))
				return nil
			})
		}
		stop.Store(true)
	}()
	wg.Wait()
	if bad.Load() != 0 {
		t.Errorf("privatization violated %d times (torn node seen non-transactionally)", bad.Load())
	}
}

// flatNesting: a Run inside a Run executes inline in the enclosing
// transaction (GCC TM flattened-nesting semantics): inner writes are
// atomic with outer ones, the inner callback sees outer writes, and an
// inner error surfaces to the outer callback which decides the fate of the
// whole flattened transaction.
func flatNesting(t *testing.T, f Factory) {
	m := newMem()
	sys := f(m)
	th := sys.NewThread()
	defer th.Close()
	var a, bAddr mem.Addr
	if err := th.Run(func(tx tm.Tx) error {
		a = tx.Alloc(1)
		bAddr = tx.Alloc(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Inner sees outer's write; inner's write commits with the outer txn.
	if err := th.Run(func(tx tm.Tx) error {
		tx.Store(a, 7)
		return th.Run(func(inner tm.Tx) error {
			if got := inner.Load(a); got != 7 {
				return fmt.Errorf("nested read = %d, want outer write 7", got)
			}
			inner.Store(bAddr, 8)
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := th.RunReadOnly(func(tx tm.Tx) error {
		if tx.Load(a) != 7 || tx.Load(bAddr) != 8 {
			return fmt.Errorf("flattened commit lost writes: %d,%d", tx.Load(a), tx.Load(bAddr))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// An inner error propagated outward aborts the whole flattened txn.
	err := th.Run(func(tx tm.Tx) error {
		tx.Store(a, 100)
		return th.Run(func(inner tm.Tx) error {
			inner.Store(bAddr, 200)
			return errUser
		})
	})
	if !errors.Is(err, errUser) {
		t.Fatalf("nested error did not propagate: %v", err)
	}
	// An inner error swallowed by the outer callback commits everything
	// the flattened transaction wrote before and after.
	if err := th.Run(func(tx tm.Tx) error {
		tx.Store(a, 11)
		if err := th.Run(func(inner tm.Tx) error {
			inner.Store(bAddr, 22)
			return errUser
		}); !errors.Is(err, errUser) {
			return fmt.Errorf("inner error lost: %v", err)
		}
		return nil // swallow: the flattened txn commits, inner write included
	}); err != nil {
		t.Fatal(err)
	}
	if err := th.RunReadOnly(func(tx tm.Tx) error {
		if tx.Load(a) != 11 || tx.Load(bAddr) != 22 {
			return fmt.Errorf("after swallow: %d,%d want 11,22", tx.Load(a), tx.Load(bAddr))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// largeTransactions: write and read sets far beyond any hardware capacity
// must still commit atomically (through whatever slow/serial path the
// system uses).
func largeTransactions(t *testing.T, f Factory, opts Options) {
	const words = 4096 // 512 lines of data
	m := newMem()
	sys := f(m)
	setup := sys.NewThread()
	var base mem.Addr
	if err := setup.Run(func(tx tm.Tx) error { base = tx.Alloc(words); return nil }); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	var wg sync.WaitGroup
	var torn atomic.Uint64
	threads := opts.Threads
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			for j := 0; j < 8; j++ {
				// Writer: stamp the whole region with one value.
				v := id<<32 | uint64(j)
				if err := th.Run(func(tx tm.Tx) error {
					for w := 0; w < words; w++ {
						tx.Store(base+mem.Addr(w), v)
					}
					return nil
				}); err != nil {
					t.Errorf("large write: %v", err)
					return
				}
				// Reader: the whole region must carry a single stamp.
				if err := th.RunReadOnly(func(tx tm.Tx) error {
					first := tx.Load(base)
					for w := 1; w < words; w += 97 {
						if tx.Load(base+mem.Addr(w)) != first {
							torn.Add(1)
							break
						}
					}
					return nil
				}); err != nil {
					t.Errorf("large read: %v", err)
					return
				}
			}
		}(uint64(i + 1))
	}
	wg.Wait()
	if torn.Load() != 0 {
		t.Errorf("observed %d torn whole-region stamps", torn.Load())
	}
}

// mixedSizes: tiny hardware-friendly transactions race with huge
// fallback-only ones on overlapping data; a conserved total catches any
// path-interaction bug.
func mixedSizes(t *testing.T, f Factory, opts Options) {
	const cells = 64
	m := newMem()
	sys := f(m)
	setup := sys.NewThread()
	var base mem.Addr
	if err := setup.Run(func(tx tm.Tx) error {
		base = tx.Alloc(cells * mem.LineWords)
		tx.Store(base, cells*100) // all value starts in cell 0
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	cell := func(i int) mem.Addr { return base + mem.Addr(i*mem.LineWords) }
	var wg sync.WaitGroup
	for i := 0; i < opts.Threads; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < opts.Ops/4; j++ {
				if rng.Intn(8) == 0 {
					// Huge rebalancing transaction: gather and respread.
					if err := th.Run(func(tx tm.Tx) error {
						var total uint64
						for c := 0; c < cells; c++ {
							total += tx.Load(cell(c))
						}
						per := total / cells
						rem := total % cells
						for c := 0; c < cells; c++ {
							v := per
							if uint64(c) < rem {
								v++
							}
							tx.Store(cell(c), v)
						}
						return nil
					}); err != nil {
						t.Errorf("rebalance: %v", err)
						return
					}
					continue
				}
				from, to := rng.Intn(cells), rng.Intn(cells)
				if err := th.Run(func(tx tm.Tx) error {
					bf := tx.Load(cell(from))
					if bf == 0 || from == to {
						return nil
					}
					tx.Store(cell(from), bf-1)
					tx.Store(cell(to), tx.Load(cell(to))+1)
					return nil
				}); err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}(int64(i + 13))
	}
	wg.Wait()
	snap := make([]uint64, cells*mem.LineWords)
	m.Snapshot(base, snap)
	var total uint64
	for c := 0; c < cells; c++ {
		total += snap[c*mem.LineWords]
	}
	if total != cells*100 {
		t.Errorf("total = %d, want %d (mixed-size interaction lost value)", total, cells*100)
	}
}

// abortStorm: a high rate of user aborts interleaved with commits must
// leave exactly the committed effects.
func abortStorm(t *testing.T, f Factory, opts Options) {
	m := newMem()
	sys := f(m)
	setup := sys.NewThread()
	var a mem.Addr
	if err := setup.Run(func(tx tm.Tx) error { a = tx.Alloc(1); return nil }); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	var wg sync.WaitGroup
	var committed atomic.Uint64
	for i := 0; i < opts.Threads; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < opts.Ops; j++ {
				abort := rng.Intn(2) == 0
				err := th.Run(func(tx tm.Tx) error {
					tx.Store(a, tx.Load(a)+1)
					if abort {
						return errUser
					}
					return nil
				})
				switch {
				case abort && !errors.Is(err, errUser):
					t.Errorf("user abort lost: %v", err)
					return
				case !abort && err != nil:
					t.Errorf("commit failed: %v", err)
					return
				case !abort:
					committed.Add(1)
				}
			}
		}(int64(i + 3))
	}
	wg.Wait()
	if got := m.LoadPlain(a); got != committed.Load() {
		t.Errorf("counter = %d, want %d (aborted increments leaked or commits lost)", got, committed.Load())
	}
}

// mixedReadOnly: read-only transactions interleave with writers; totals
// remain consistent and read-only commits are counted.
func mixedReadOnly(t *testing.T, f Factory, opts Options) {
	m := newMem()
	sys := f(m)
	setup := sys.NewThread()
	var a mem.Addr
	if err := setup.Run(func(tx tm.Tx) error { a = tx.Alloc(1); return nil }); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	var wg sync.WaitGroup
	roThreads := (opts.Threads + 1) / 2
	var roCommits atomic.Uint64
	for i := 0; i < opts.Threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			for j := 0; j < opts.Ops; j++ {
				if id < roThreads {
					_ = th.RunReadOnly(func(tx tm.Tx) error {
						_ = tx.Load(a)
						return nil
					})
				} else {
					_ = th.Run(func(tx tm.Tx) error {
						tx.Store(a, tx.Load(a)+1)
						return nil
					})
				}
			}
			if id < roThreads {
				roCommits.Add(th.Stats().ReadOnlyCommits)
			}
		}(i)
	}
	wg.Wait()
	if got := m.LoadPlain(a); got != uint64((opts.Threads-roThreads)*opts.Ops) {
		t.Errorf("counter = %d, want %d", got, (opts.Threads-roThreads)*opts.Ops)
	}
	if got := roCommits.Load(); got != uint64(roThreads*opts.Ops) {
		t.Errorf("ReadOnlyCommits = %d, want %d", got, roThreads*opts.Ops)
	}
}
