package lockelision_test

import (
	"sync"
	"testing"

	"rhnorec/internal/htm"
	"rhnorec/internal/lockelision"
	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
	"rhnorec/internal/tmtest"
)

func factory(m *mem.Memory) tm.System {
	dev := htm.NewDevice(m, htm.Config{})
	dev.SetActiveThreads(4)
	return lockelision.New(m, dev, tm.RetryPolicy{})
}

func TestConformance(t *testing.T) {
	tmtest.RunConformance(t, factory, tmtest.Options{})
}

func TestName(t *testing.T) {
	m := mem.New(1024)
	sys := lockelision.New(m, htm.NewDevice(m, htm.Config{}), tm.RetryPolicy{})
	if sys.Name() != "lock-elision" {
		t.Errorf("Name = %q", sys.Name())
	}
	if sys.Memory() != m {
		t.Error("Memory accessor broken")
	}
}

func TestMismatchedDevicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for device over a different memory")
		}
	}()
	lockelision.New(mem.New(1024), htm.NewDevice(mem.New(1024), htm.Config{}), tm.RetryPolicy{})
}

// TestFastPathUsedWhenUncontended: single-threaded transactions must all
// commit in hardware, never taking the lock.
func TestFastPathUsedWhenUncontended(t *testing.T) {
	m := mem.New(1 << 16)
	sys := factory(m)
	th := sys.NewThread()
	defer th.Close()
	var a mem.Addr
	for i := 0; i < 50; i++ {
		if err := th.Run(func(tx tm.Tx) error {
			if a == mem.Nil {
				a = tx.Alloc(1)
			}
			tx.Store(a, tx.Load(a)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	s := th.Stats()
	if s.FastPathCommits != 50 {
		t.Errorf("FastPathCommits = %d, want 50", s.FastPathCommits)
	}
	if s.SerialCommits != 0 || s.Fallbacks != 0 {
		t.Errorf("unexpected fallbacks: %+v", s)
	}
}

// TestCapacityOverflowFallsBackToLock: a transaction exceeding the write
// capacity must complete via the lock fallback.
func TestCapacityOverflowFallsBackToLock(t *testing.T) {
	m := mem.New(1 << 20)
	dev := htm.NewDevice(m, htm.Config{WriteCapacityLines: 8})
	dev.SetActiveThreads(1)
	sys := lockelision.New(m, dev, tm.RetryPolicy{})
	th := sys.NewThread()
	defer th.Close()
	var base mem.Addr
	if err := th.Run(func(tx tm.Tx) error { base = tx.Alloc(64 * mem.LineWords); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := th.Run(func(tx tm.Tx) error {
		for i := 0; i < 64; i++ {
			tx.Store(base+mem.Addr(i*mem.LineWords), uint64(i))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s := th.Stats()
	if s.SerialCommits != 1 {
		t.Errorf("SerialCommits = %d, want 1 (capacity fallback)", s.SerialCommits)
	}
	if s.HTMCapacityAborts == 0 {
		t.Error("no capacity abort recorded")
	}
	if s.Fallbacks != 1 {
		t.Errorf("Fallbacks = %d, want 1", s.Fallbacks)
	}
	// And the writes landed.
	for i := 0; i < 64; i++ {
		if got := m.LoadPlain(base + mem.Addr(i*mem.LineWords)); got != uint64(i) {
			t.Fatalf("word %d = %d after fallback commit", i, got)
		}
	}
}

// TestLockSerializesWithSpeculation: hammer a counter with a mix of huge
// (fallback-forcing) and small transactions; no update may be lost even
// though paths interleave.
func TestLockSerializesWithSpeculation(t *testing.T) {
	m := mem.New(1 << 20)
	dev := htm.NewDevice(m, htm.Config{WriteCapacityLines: 8})
	dev.SetActiveThreads(4)
	sys := lockelision.New(m, dev, tm.RetryPolicy{})
	setup := sys.NewThread()
	var ctr, big mem.Addr
	if err := setup.Run(func(tx tm.Tx) error {
		ctr = tx.Alloc(1)
		big = tx.Alloc(64 * mem.LineWords)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	const threads, per = 4, 150
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			for j := 0; j < per; j++ {
				if err := th.Run(func(tx tm.Tx) error {
					tx.Store(ctr, tx.Load(ctr)+1)
					if id == 0 { // thread 0 overflows capacity every time
						for k := 0; k < 64; k++ {
							tx.Store(big+mem.Addr(k*mem.LineWords), tx.Load(ctr))
						}
					}
					return nil
				}); err != nil {
					t.Errorf("run error: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if got := m.LoadPlain(ctr); got != threads*per {
		t.Errorf("counter = %d, want %d", got, threads*per)
	}
}

// TestRestartFromApplicationRetries: tm.Restart inside fn behaves as a
// conflict (retries, eventually falling back) rather than crashing.
func TestRestartFromApplicationRetries(t *testing.T) {
	m := mem.New(1 << 16)
	sys := factory(m)
	th := sys.NewThread()
	defer th.Close()
	calls := 0
	if err := th.Run(func(tx tm.Tx) error {
		calls++
		if calls < 3 {
			tm.Restart()
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("callback ran %d times, want 3", calls)
	}
}
