// Package lockelision implements transactional lock elision (paper §3.1,
// "Lock Elision"): transactions execute as pure hardware transactions that
// subscribe to a global lock, and a transaction that repeatedly fails in
// hardware acquires the lock — aborting every speculating transaction and
// serializing execution to guarantee progress.
package lockelision

import (
	"runtime"

	"rhnorec/internal/htm"
	"rhnorec/internal/mem"
	"rhnorec/internal/obs"
	"rhnorec/internal/tm"
)

// abortLockTaken is the XABORT payload used when the subscription check
// finds the global lock held: the canonical htm.ArgHTMLockTaken, so the
// observability taxonomy classifies it (the elided lock plays the role the
// global HTM lock plays in the hybrids).
const abortLockTaken = htm.ArgHTMLockTaken

// System is a lock-elision TM over one shared memory.
type System struct {
	m      *mem.Memory
	dev    *htm.Device
	rec    *tm.Reclaimer
	policy tm.RetryPolicy
	engine *tm.Engine
	gLock  mem.Addr
}

// New creates a lock-elision system. dev must speculate over m. Zero policy
// fields take the paper's defaults.
func New(m *mem.Memory, dev *htm.Device, policy tm.RetryPolicy) *System {
	if dev.Memory() != m {
		panic("lockelision: device bound to a different memory")
	}
	engine := tm.NewEngine(policy, dev.Config().SeedFn)
	tc := m.NewThreadCache()
	s := &System{
		m:      m,
		dev:    dev,
		rec:    tm.NewReclaimer(),
		policy: engine.Policy(),
		engine: engine,
		gLock:  tc.Alloc(mem.LineWords), // the lock gets its own cache line
	}
	return s
}

// Name implements tm.System.
func (s *System) Name() string { return "lock-elision" }

// Memory implements tm.System.
func (s *System) Memory() *mem.Memory { return s.m }

// NewThread implements tm.System.
func (s *System) NewThread() tm.Thread {
	t := &thread{
		sys:  s,
		base: tm.NewThreadBase(s.m, s.rec),
		htx:  s.dev.NewTxn(),
	}
	t.base.CM = s.engine.NewThreadPolicy(&t.base)
	return t
}

type thread struct {
	sys  *System
	base tm.ThreadBase
	htx  *htm.Txn
	undo []mem.WriteEntry
	ro   bool
}

func (t *thread) Stats() *tm.Stats { return &t.base.St }
func (t *thread) Close()           { t.base.CloseBase() }

func (t *thread) Run(fn func(tm.Tx) error) error         { return t.run(fn, false) }
func (t *thread) RunReadOnly(fn func(tm.Tx) error) error { return t.run(fn, true) }

func (t *thread) run(fn func(tm.Tx) error, ro bool) error {
	if nested := t.base.Nested(); nested != nil {
		// Flat nesting: execute inline in the enclosing transaction.
		return fn(nested)
	}
	t.base.BeginTxn()
	defer t.base.EndTxn()
	t.ro = ro
	o := t.base.St.Obs
	attemptStart := o.Start()
	t.base.ObsEvent(obs.EventBegin, obs.PathNone)
	retries := 0
	if t.base.CM.AdmitFast() {
		for {
			t.waitLockFree()
			fastStart := o.Start()
			err, ab := t.fastAttempt(fn)
			o.RecordSince(obs.PhaseFast, fastStart)
			if ab == nil {
				if err == nil {
					t.base.CM.OnFastCommit(retries)
					t.base.ObsEvent(obs.EventCommit, obs.PathFast)
				}
				o.RecordSince(obs.PhaseAttempt, attemptStart)
				return err
			}
			t.base.RecordHTMAbort(ab, retries+1)
			retries++
			if t.base.CM.OnAbort(ab, retries) != tm.RetryFast {
				break
			}
		}
	}
	t.base.CM.OnFallback()
	t.base.St.Fallbacks++
	t.base.ObsEvent(obs.EventFallback, obs.PathNone)
	err := t.lockFallback(fn)
	t.base.CM.OnSlowDone()
	o.RecordSince(obs.PhaseAttempt, attemptStart)
	return err
}

// waitLockFree avoids starting a speculation that is doomed to abort on its
// subscription check.
func (t *thread) waitLockFree() {
	for t.base.M.LoadPlain(t.sys.gLock) != 0 {
		runtime.Gosched()
	}
}

// fastAttempt runs fn once inside a hardware transaction. It returns
// (userErr, nil) when the transaction finished (committed, or user-aborted
// with no effects), and (nil, abort) when the hardware aborted.
func (t *thread) fastAttempt(fn func(tm.Tx) error) (err error, ab *htm.Abort) {
	defer func() {
		if r := recover(); r != nil {
			if a, ok := htm.AsAbort(r); ok {
				t.base.AbortCleanup()
				err, ab = nil, a
				return
			}
			t.htx.Cancel()
			t.base.AbortCleanup()
			if tm.IsRestart(r) {
				// An explicit tm.Restart from application code behaves
				// like a conflict abort.
				err, ab = nil, &htm.Abort{Code: htm.Conflict}
				return
			}
			panic(r)
		}
	}()
	t.htx.Begin()
	// Subscribe to the global lock (elision): abort if it is held, and keep
	// it in the read set so a later acquisition kills this speculation.
	if t.htx.Load(t.sys.gLock) != 0 {
		t.htx.Abort(abortLockTaken)
	}
	if uerr := t.base.CallUser(fn, fastTx{t}); uerr != nil {
		t.htx.Cancel() // discard speculative writes; nothing became visible
		t.base.AbortCleanup()
		t.base.St.UserAborts++
		return uerr, nil
	}
	t.htx.Commit() // read-only speculations commit lock-free in the substrate
	t.base.CommitCleanup()
	t.base.St.Commits++
	t.base.St.FastPathCommits++
	if t.ro {
		t.base.St.ReadOnlyCommits++
	}
	return nil, nil
}

// lockFallback acquires the global lock and runs fn non-speculatively. The
// acquisition's plain store aborts all current speculations (they subscribed
// to the lock), preserving opacity.
func (t *thread) lockFallback(fn func(tm.Tx) error) error {
	m := t.base.M
	for !m.CASPlain(t.sys.gLock, 0, 1) {
		runtime.Gosched()
	}
	serialStart := t.base.St.Obs.Start()
	t.undo = t.undo[:0]
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				t.rollback()
				m.StorePlain(t.sys.gLock, 0)
				t.base.AbortCleanup()
				panic(r)
			}
		}()
		return t.base.CallUser(fn, slowTx{t})
	}()
	if err != nil {
		t.rollback()
		m.StorePlain(t.sys.gLock, 0)
		t.base.AbortCleanup()
		t.base.St.UserAborts++
		return err
	}
	m.StorePlain(t.sys.gLock, 0)
	t.base.St.Obs.RecordSince(obs.PhaseSerial, serialStart)
	t.base.CommitCleanup()
	t.base.St.Commits++
	t.base.St.SerialCommits++
	if t.ro {
		t.base.St.ReadOnlyCommits++
	}
	t.base.ObsEvent(obs.EventCommit, obs.PathSerial)
	return nil
}

func (t *thread) rollback() {
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.base.M.StorePlain(t.undo[i].Addr, t.undo[i].Value)
	}
	t.undo = t.undo[:0]
}

// fastTx is the uninstrumented hardware view: loads and stores go straight
// to the speculation buffer.
type fastTx struct{ t *thread }

func (v fastTx) Load(a mem.Addr) uint64 { return v.t.htx.Load(a) }

func (v fastTx) Store(a mem.Addr, val uint64) {
	if v.t.ro {
		panic(tm.ErrStoreInReadOnly)
	}
	v.t.htx.Store(a, val)
}

func (v fastTx) Alloc(n int) mem.Addr   { return v.t.base.TxAlloc(n) }
func (v fastTx) Free(a mem.Addr, n int) { v.t.base.TxFree(a, n) }

// slowTx is the serialized view under the global lock, with an undo log for
// user aborts.
type slowTx struct{ t *thread }

func (v slowTx) Load(a mem.Addr) uint64 { return v.t.base.M.LoadPlain(a) }

func (v slowTx) Store(a mem.Addr, val uint64) {
	if v.t.ro {
		panic(tm.ErrStoreInReadOnly)
	}
	v.t.undo = append(v.t.undo, mem.WriteEntry{Addr: a, Value: v.t.base.M.LoadPlain(a)})
	v.t.base.M.StorePlain(a, val)
}

func (v slowTx) Alloc(n int) mem.Addr   { return v.t.base.TxAlloc(n) }
func (v slowTx) Free(a mem.Addr, n int) { v.t.base.TxFree(a, n) }
