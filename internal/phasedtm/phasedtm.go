// Package phasedtm implements the PhasedTM approach the paper's background
// discusses (§1.1, [16]): execution proceeds in global phases that are
// either all-hardware or all-software. In the hardware phase transactions
// run pure and uninstrumented; when any transaction cannot complete in
// hardware the whole system switches to a software phase (an eager NOrec
// here) and every concurrent transaction pays for it — "poor performance if
// even a single transaction needs to be executed in software", which is the
// weakness the benchmarks can demonstrate against the hybrids.
//
// Phase protocol: gMode holds the phase; gSWActive counts live software
// transactions. Hardware transactions subscribe to both at start, so a
// phase switch or a straggling software transaction aborts them instantly.
// A software transaction registers in gSWActive before verifying the phase,
// closing the switch-back race.
package phasedtm

import (
	"runtime"

	"rhnorec/internal/htm"
	"rhnorec/internal/mem"
	"rhnorec/internal/obs"
	"rhnorec/internal/tm"
)

// Phases.
const (
	modeHW = 0
	modeSW = 1
)

// abortWrongPhase is the XABORT payload for the phase-subscription check:
// the canonical htm.ArgWrongPhase, so the observability taxonomy separates
// phase-protocol aborts from data conflicts.
const abortWrongPhase = htm.ArgWrongPhase

// System is a PhasedTM over one shared memory.
type System struct {
	m      *mem.Memory
	dev    *htm.Device
	rec    *tm.Reclaimer
	policy tm.RetryPolicy
	engine *tm.Engine

	gMode     mem.Addr
	gSWActive mem.Addr
	gClock    mem.Addr // the software phase's NOrec clock
}

// New creates a PhasedTM system. dev must speculate over m.
func New(m *mem.Memory, dev *htm.Device, policy tm.RetryPolicy) *System {
	if dev.Memory() != m {
		panic("phasedtm: device bound to a different memory")
	}
	engine := tm.NewEngine(policy, dev.Config().SeedFn)
	tc := m.NewThreadCache()
	return &System{
		m:         m,
		dev:       dev,
		rec:       tm.NewReclaimer(),
		policy:    engine.Policy(),
		engine:    engine,
		gMode:     tc.Alloc(mem.LineWords),
		gSWActive: tc.Alloc(mem.LineWords),
		gClock:    tc.Alloc(mem.LineWords),
	}
}

// Name implements tm.System.
func (s *System) Name() string { return "phased-tm" }

// Memory implements tm.System.
func (s *System) Memory() *mem.Memory { return s.m }

// NewThread implements tm.System.
func (s *System) NewThread() tm.Thread {
	t := &thread{
		sys:  s,
		base: tm.NewThreadBase(s.m, s.rec),
		htx:  s.dev.NewTxn(),
	}
	t.base.CM = s.engine.NewThreadPolicy(&t.base)
	return t
}

type thread struct {
	sys  *System
	base tm.ThreadBase
	htx  *htm.Txn
	ro   bool

	// Software-phase NOrec state.
	txv           uint64
	writeDetected bool
	undo          []mem.WriteEntry
}

func (t *thread) Stats() *tm.Stats { return &t.base.St }
func (t *thread) Close()           { t.base.CloseBase() }

func (t *thread) Run(fn func(tm.Tx) error) error         { return t.run(fn, false) }
func (t *thread) RunReadOnly(fn func(tm.Tx) error) error { return t.run(fn, true) }

func (t *thread) run(fn func(tm.Tx) error, ro bool) error {
	if nested := t.base.Nested(); nested != nil {
		// Flat nesting: execute inline in the enclosing transaction.
		return fn(nested)
	}
	t.base.BeginTxn()
	defer t.base.EndTxn()
	t.ro = ro
	m := t.base.M
	o := t.base.St.Obs
	attemptStart := o.Start()
	t.base.ObsEvent(obs.EventBegin, obs.PathNone)
	retries := 0
	if t.base.CM.AdmitFast() {
		for {
			if m.LoadPlain(t.sys.gMode) == modeSW {
				// Opportunistic switch-back: if the software phase has
				// drained, restore the hardware phase.
				if m.LoadPlain(t.sys.gSWActive) != 0 || !m.CASPlain(t.sys.gMode, modeSW, modeHW) {
					err := t.softwareRun(fn)
					o.RecordSince(obs.PhaseAttempt, attemptStart)
					return err
				}
			}
			fastStart := o.Start()
			err, ab := t.fastAttempt(fn)
			o.RecordSince(obs.PhaseFast, fastStart)
			if ab == nil {
				if err == nil {
					t.base.CM.OnFastCommit(retries)
					t.base.ObsEvent(obs.EventCommit, obs.PathFast)
				}
				o.RecordSince(obs.PhaseAttempt, attemptStart)
				return err
			}
			t.base.RecordHTMAbort(ab, retries+1)
			retries++
			if t.base.CM.OnAbort(ab, retries) != tm.RetryFast {
				break
			}
		}
	}
	// Hardware gave up (or the policy kept it away): switch the whole
	// system to the software phase.
	t.base.CM.OnFallback()
	t.base.St.Fallbacks++
	t.base.ObsEvent(obs.EventFallback, obs.PathNone)
	m.CASPlain(t.sys.gMode, modeHW, modeSW)
	err := t.softwareRun(fn)
	t.base.CM.OnSlowDone()
	o.RecordSince(obs.PhaseAttempt, attemptStart)
	return err
}

// fastAttempt runs fn as a pure hardware transaction of the hardware phase.
func (t *thread) fastAttempt(fn func(tm.Tx) error) (err error, ab *htm.Abort) {
	defer func() {
		if r := recover(); r != nil {
			if a, ok := htm.AsAbort(r); ok {
				t.base.AbortCleanup()
				err, ab = nil, a
				return
			}
			t.htx.Cancel()
			t.base.AbortCleanup()
			if tm.IsRestart(r) {
				err, ab = nil, &htm.Abort{Code: htm.Conflict}
				return
			}
			panic(r)
		}
	}()
	t.htx.Begin()
	// Phase subscription: any switch to software, or a straggling software
	// transaction, kills this speculation.
	if t.htx.Load(t.sys.gMode) != modeHW || t.htx.Load(t.sys.gSWActive) != 0 {
		t.htx.Abort(abortWrongPhase)
	}
	if uerr := t.base.CallUser(fn, fastTx{t}); uerr != nil {
		t.htx.Cancel()
		t.base.AbortCleanup()
		t.base.St.UserAborts++
		return uerr, nil
	}
	t.htx.Commit()
	t.base.CommitCleanup()
	t.base.St.Commits++
	t.base.St.FastPathCommits++
	if t.ro {
		t.base.St.ReadOnlyCommits++
	}
	return nil, nil
}

// softwareRun executes fn in the software phase (eager NOrec).
func (t *thread) softwareRun(fn func(tm.Tx) error) error {
	m := t.base.M
	// Register before verifying the phase: a hardware transaction that
	// starts concurrently sees either the registration or the software
	// mode and aborts either way.
	m.AddPlain(t.sys.gSWActive, 1)
	for m.LoadPlain(t.sys.gMode) != modeSW {
		// The phase flipped back before we got going; re-enter properly.
		m.SubPlain(t.sys.gSWActive, 1)
		runtime.Gosched()
		if m.LoadPlain(t.sys.gMode) == modeHW {
			m.CASPlain(t.sys.gMode, modeHW, modeSW)
		}
		m.AddPlain(t.sys.gSWActive, 1)
	}
	defer m.SubPlain(t.sys.gSWActive, 1)
	o := t.base.St.Obs
	restarts := 0
	for {
		t.base.St.SlowPathStarts++
		swStart := o.Start()
		err, restarted := t.softwareAttempt(fn)
		o.RecordSince(obs.PhaseSoftware, swStart)
		if !restarted {
			if err == nil {
				t.base.ObsEvent(obs.EventCommit, obs.PathSlow)
			}
			return err
		}
		t.base.St.SlowPathRestarts++
		restarts++
		t.base.RecordSTMRestart(restarts)
		t.base.CM.OnSTMRestart(restarts)
	}
}

func (t *thread) softwareAttempt(fn func(tm.Tx) error) (err error, restarted bool) {
	defer func() {
		if r := recover(); r != nil {
			t.softwareAbortCleanup()
			if tm.IsRestart(r) {
				err, restarted = nil, true
				return
			}
			panic(r)
		}
	}()
	m := t.base.M
	t.writeDetected = false
	t.undo = t.undo[:0]
	for {
		v := m.LoadPlain(t.sys.gClock)
		if v&1 == 0 {
			t.txv = v
			break
		}
		runtime.Gosched()
	}
	if uerr := t.base.CallUser(fn, swTx{t}); uerr != nil {
		t.softwareAbortCleanup()
		t.base.St.UserAborts++
		return uerr, false
	}
	if t.writeDetected {
		wbStart := t.base.St.Obs.Start()
		m.StorePlain(t.sys.gClock, (t.txv&^1)+2)
		t.writeDetected = false
		t.base.St.Obs.RecordSince(obs.PhaseWriteback, wbStart)
	}
	t.base.CommitCleanup()
	t.base.St.Commits++
	t.base.St.SlowPathCommits++
	if t.ro {
		t.base.St.ReadOnlyCommits++
	}
	return nil, false
}

func (t *thread) softwareAbortCleanup() {
	m := t.base.M
	for i := len(t.undo) - 1; i >= 0; i-- {
		m.StorePlain(t.undo[i].Addr, t.undo[i].Value)
	}
	t.undo = t.undo[:0]
	if t.writeDetected {
		m.StorePlain(t.sys.gClock, t.txv&^1)
		t.writeDetected = false
	}
	t.base.AbortCleanup()
}

type fastTx struct{ t *thread }

func (v fastTx) Load(a mem.Addr) uint64 { return v.t.htx.Load(a) }

func (v fastTx) Store(a mem.Addr, val uint64) {
	if v.t.ro {
		panic(tm.ErrStoreInReadOnly)
	}
	v.t.htx.Store(a, val)
}

func (v fastTx) Alloc(n int) mem.Addr   { return v.t.base.TxAlloc(n) }
func (v fastTx) Free(a mem.Addr, n int) { v.t.base.TxFree(a, n) }

// swTx is the software phase's eager NOrec view.
type swTx struct{ t *thread }

func (v swTx) Load(a mem.Addr) uint64 {
	t := v.t
	t.base.InstrumentedAccess()
	m := t.base.M
	val := m.LoadPlain(a)
	if m.LoadPlain(t.sys.gClock) != t.txv {
		tm.Restart()
	}
	return val
}

func (v swTx) Store(a mem.Addr, val uint64) {
	t := v.t
	if t.ro {
		panic(tm.ErrStoreInReadOnly)
	}
	t.base.InstrumentedAccess()
	m := t.base.M
	if !t.writeDetected {
		if !m.CASPlain(t.sys.gClock, t.txv, t.txv|1) {
			tm.Restart()
		}
		t.txv |= 1
		t.writeDetected = true
	}
	t.undo = append(t.undo, mem.WriteEntry{Addr: a, Value: m.LoadPlain(a)})
	m.StorePlain(a, val)
}

func (v swTx) Alloc(n int) mem.Addr   { return v.t.base.TxAlloc(n) }
func (v swTx) Free(a mem.Addr, n int) { v.t.base.TxFree(a, n) }
