package phasedtm_test

import (
	"sync"
	"testing"

	"rhnorec/internal/htm"
	"rhnorec/internal/mem"
	"rhnorec/internal/phasedtm"
	"rhnorec/internal/tm"
	"rhnorec/internal/tmtest"
)

func factory(m *mem.Memory) tm.System {
	dev := htm.NewDevice(m, htm.Config{})
	dev.SetActiveThreads(4)
	return phasedtm.New(m, dev, tm.RetryPolicy{})
}

func TestConformance(t *testing.T) {
	tmtest.RunConformance(t, factory, tmtest.Options{})
}

func TestConformanceTinyCapacity(t *testing.T) {
	// Constant capacity failures keep the system mostly in the software
	// phase.
	tmtest.RunConformance(t, func(m *mem.Memory) tm.System {
		dev := htm.NewDevice(m, htm.Config{ReadCapacityLines: 2, WriteCapacityLines: 1})
		dev.SetActiveThreads(4)
		return phasedtm.New(m, dev, tm.RetryPolicy{})
	}, tmtest.Options{})
}

func TestName(t *testing.T) {
	m := mem.New(1024)
	sys := phasedtm.New(m, htm.NewDevice(m, htm.Config{}), tm.RetryPolicy{})
	if sys.Name() != "phased-tm" {
		t.Errorf("Name = %q", sys.Name())
	}
	if sys.Memory() != m {
		t.Error("Memory accessor broken")
	}
}

func TestMismatchedDevicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	phasedtm.New(mem.New(1024), htm.NewDevice(mem.New(1024), htm.Config{}), tm.RetryPolicy{})
}

// TestPhaseSwitchAndBack: a capacity-bound transaction forces the software
// phase; subsequent small transactions must eventually return to the
// hardware phase.
func TestPhaseSwitchAndBack(t *testing.T) {
	m := mem.New(1 << 20)
	dev := htm.NewDevice(m, htm.Config{WriteCapacityLines: 4})
	dev.SetActiveThreads(1)
	sys := phasedtm.New(m, dev, tm.RetryPolicy{})
	th := sys.NewThread()
	defer th.Close()
	var base, small mem.Addr
	if err := th.Run(func(tx tm.Tx) error {
		base = tx.Alloc(32 * mem.LineWords)
		small = tx.Alloc(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Capacity-bound: must run in the software phase.
	if err := th.Run(func(tx tm.Tx) error {
		for k := 0; k < 32; k++ {
			tx.Store(base+mem.Addr(k*mem.LineWords), 1)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if th.Stats().SlowPathCommits == 0 {
		t.Fatal("oversized transaction did not use the software phase")
	}
	// Small transactions afterwards must recover the hardware phase. Run
	// more of them than the adaptive policy's promotion-probe period: under
	// RHNOREC_POLICY=adaptive the capacity abort demotes this thread past
	// the fast path, and only an epoch probe lets it rediscover hardware.
	fastBefore := th.Stats().FastPathCommits
	for i := 0; i < 2*tm.DefaultPolicy().PromotionProbePeriod; i++ {
		if err := th.Run(func(tx tm.Tx) error {
			tx.Store(small, tx.Load(small)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if th.Stats().FastPathCommits == fastBefore {
		t.Error("system never switched back to the hardware phase")
	}
}

// TestWholeSystemPaysForOneFallback demonstrates the phased weakness the
// paper describes: while one thread keeps failing in hardware, other
// threads' small transactions get dragged into the software phase.
func TestWholeSystemPaysForOneFallback(t *testing.T) {
	m := mem.New(1 << 20)
	dev := htm.NewDevice(m, htm.Config{WriteCapacityLines: 4})
	dev.SetActiveThreads(2)
	sys := phasedtm.New(m, dev, tm.RetryPolicy{})
	setup := sys.NewThread()
	var big, small mem.Addr
	if err := setup.Run(func(tx tm.Tx) error {
		big = tx.Alloc(32 * mem.LineWords)
		small = tx.Alloc(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() { // permanent capacity-bound transactions
		defer wg.Done()
		th := sys.NewThread()
		defer th.Close()
		for i := uint64(0); ; i++ {
			select {
			case <-done:
				return
			default:
			}
			_ = th.Run(func(tx tm.Tx) error {
				for k := 0; k < 32; k++ {
					tx.Store(big+mem.Addr(k*mem.LineWords), i)
				}
				return nil
			})
		}
	}()
	th := sys.NewThread()
	defer th.Close()
	for i := 0; i < 500; i++ {
		if err := th.Run(func(tx tm.Tx) error {
			tx.Store(small, tx.Load(small)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	if got := m.LoadPlain(small); got != 500 {
		t.Errorf("counter = %d, want 500", got)
	}
	if th.Stats().SlowPathCommits == 0 {
		t.Error("small transactions never got dragged into the software phase — the phased cost did not manifest")
	}
}
